//! Index-accelerated top-k search: a token inverted index over module
//! labels plus upper-bound candidate pruning.
//!
//! Repository search in the seed implementation scores the query against
//! *every* workflow.  The classic repository-search architecture (keyword
//! indexing of workflow repositories à la Davidson et al.; trie-indexed
//! pattern lookup à la García-Cuesta et al.) avoids that: per-workflow
//! features are precomputed once, indexed, and candidates are pruned by a
//! cheap *admissible* upper bound before the expensive measure runs.
//!
//! The engine is exact: because every bound is admissible (`bound(q, c) >=
//! score(q, c)` and scores are non-negative), a candidate is skipped only
//! when it provably cannot enter the result list, and a candidate whose
//! bound is `0` is known to score exactly `0` without running the measure.
//! The returned hit lists are therefore bit-identical — ids, scores and
//! tie-order — to an exhaustive [`crate::SearchEngine::top_k`] scan.
//! Measures that cannot provide a bound (`upper_bound` returning `None`)
//! degrade gracefully to an exhaustive — but still corpus-resident — scan.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wf_model::WorkflowId;

use crate::search::{hit_ordering, merge_top_k, SearchHit, SearchThreshold, TopK};

/// A corpus-resident similarity measure addressable by corpus index.
///
/// Implementations precompute per-workflow features once (profiles) and
/// score pairs from those features.  Contract:
///
/// * `score` is non-negative and deterministic;
/// * `upper_bound`, when `Some`, is *admissible*: `upper_bound(q, c) >=
///   score(q, c)` for every pair — the indexed search relies on this for
///   exactness;
/// * `label_token_ids` returns the distinct interned label tokens of a
///   workflow, sorted ascending.
pub trait CorpusScorer: Sync {
    /// Number of workflows in the corpus.
    fn corpus_len(&self) -> usize;

    /// The id of the workflow at a corpus index.
    fn workflow_id(&self, index: usize) -> &WorkflowId;

    /// The exact similarity of two corpus workflows.
    fn score(&self, query: usize, candidate: usize) -> f64;

    /// A cheap admissible upper bound on [`CorpusScorer::score`], or `None`
    /// when the measure cannot bound this pair (forcing it to be scored).
    fn upper_bound(&self, query: usize, candidate: usize) -> Option<f64>;

    /// The distinct interned module-label token ids of a workflow, sorted.
    fn label_token_ids(&self, index: usize) -> &[u32];
}

/// An inverted index from label-token ids to the workflows containing them.
///
/// Besides the batch [`TokenIndex::build`], the index supports *incremental*
/// maintenance ([`TokenIndex::add_workflow`] /
/// [`TokenIndex::remove_workflow`]): a serving process can mutate its corpus
/// without ever rebuilding the index, and the mutated index is structurally
/// equal (`==`) to a from-scratch rebuild over the surviving workflows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenIndex {
    postings: BTreeMap<u32, Vec<u32>>,
    workflows: usize,
}

impl TokenIndex {
    /// Builds the index over every workflow of a corpus-resident measure.
    pub fn build<S: CorpusScorer + ?Sized>(scorer: &S) -> Self {
        let mut postings: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let workflows = scorer.corpus_len();
        for wf in 0..workflows {
            // Token lists are distinct per workflow, so each posting list
            // receives a workflow at most once and stays sorted.
            for &token in scorer.label_token_ids(wf) {
                postings.entry(token).or_default().push(wf as u32);
            }
        }
        TokenIndex {
            postings,
            workflows,
        }
    }

    /// The posting list (sorted workflow indices) of one token.
    pub fn postings(&self, token: u32) -> &[u32] {
        self.postings.get(&token).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct indexed tokens.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }

    /// Number of indexed workflows.
    pub fn workflow_count(&self) -> usize {
        self.workflows
    }

    /// How many of `query_tokens` each workflow shares, as a dense vector
    /// (one counter per corpus workflow, zero for untouched workflows).
    pub fn overlap_counts(&self, query_tokens: &[u32]) -> Vec<u32> {
        let mut counts = vec![0u32; self.workflows];
        for &token in query_tokens {
            for &wf in self.postings(token) {
                counts[wf as usize] += 1;
            }
        }
        counts
    }

    /// Registers one new workflow (appended at the end of the corpus) with
    /// its distinct sorted label-token ids, returning its corpus index.
    ///
    /// The new index is the largest so far, so every touched posting list
    /// stays sorted by a plain push — O(|tokens| · log |vocabulary|).
    pub fn add_workflow(&mut self, tokens: &[u32]) -> usize {
        let index = self.workflows;
        for &token in tokens {
            self.postings.entry(token).or_default().push(index as u32);
        }
        self.workflows += 1;
        index
    }

    /// Unregisters the workflow at a corpus index, shifting every later
    /// workflow down by one — mirroring `Vec::remove` on the corpus itself,
    /// so the index stays aligned with the surviving corpus order.
    ///
    /// Walks every posting list once (O(total postings)); empty lists are
    /// dropped so the result stays `==` to a from-scratch rebuild.
    ///
    /// # Panics
    /// Panics when `index >= self.workflow_count()`.
    pub fn remove_workflow(&mut self, index: usize) {
        assert!(
            index < self.workflows,
            "workflow index {index} out of bounds for {} indexed workflows",
            self.workflows
        );
        let removed = index as u32;
        for list in self.postings.values_mut() {
            list.retain(|&wf| wf != removed);
            for wf in list.iter_mut() {
                if *wf > removed {
                    *wf -= 1;
                }
            }
        }
        self.postings.retain(|_, list| !list.is_empty());
        self.workflows -= 1;
    }
}

// `BTreeMap<u32, _>` has no vendored-serde impl (JSON object keys are
// strings), so the index serializes by hand as parallel token/posting-list
// arrays plus the workflow count.
impl Serialize for TokenIndex {
    fn serialize_value(&self) -> serde::Value {
        let tokens: Vec<u32> = self.postings.keys().copied().collect();
        let lists: Vec<&[u32]> = self.postings.values().map(Vec::as_slice).collect();
        serde::Value::Object(vec![
            ("tokens".to_string(), tokens.serialize_value()),
            ("postings".to_string(), lists.serialize_value()),
            ("workflows".to_string(), self.workflows.serialize_value()),
        ])
    }
}

impl Deserialize for TokenIndex {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get_field(name)
                .ok_or_else(|| serde::Error::missing_field("TokenIndex", name))
        };
        let tokens = Vec::<u32>::deserialize_value(field("tokens")?)?;
        let lists = Vec::<Vec<u32>>::deserialize_value(field("postings")?)?;
        if tokens.len() != lists.len() {
            return Err(serde::Error(format!(
                "token/posting arity mismatch: {} tokens, {} posting lists",
                tokens.len(),
                lists.len()
            )));
        }
        Ok(TokenIndex {
            postings: tokens.into_iter().zip(lists).collect(),
            workflows: usize::deserialize_value(field("workflows")?)?,
        })
    }
}

/// Instrumentation of one indexed search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate workflows considered (corpus minus the query).
    pub candidates: usize,
    /// Candidates scored with the full measure.
    pub scored: usize,
    /// Candidates skipped because their bound fell below the running top-k
    /// threshold.
    pub pruned: usize,
    /// Candidates resolved to an exact score of 0 from a zero bound,
    /// without running the measure.
    pub zero_bound: usize,
    /// Candidates sharing at least one label token with the query.
    pub shared_token_candidates: usize,
    /// Candidates left unexamined because the search was cancelled (by a
    /// deadline or an explicit [`CancelToken`](crate::search::CancelToken)
    /// trip) before the scan reached them.
    pub abandoned: usize,
    /// True when cancellation cut this scan short: the hits are a correct
    /// but possibly incomplete prefix of the candidate stream's true
    /// contribution, and callers must surface the result as degraded.
    pub cancelled: bool,
}

impl SearchStats {
    /// Fraction of candidates that skipped full scoring.
    pub fn pruned_fraction(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            (self.candidates - self.scored) as f64 / self.candidates as f64
        }
    }

    /// Accumulates another search's counters (fan-out paths aggregate the
    /// per-branch instrumentation through this).
    pub fn merge(&mut self, other: &SearchStats) {
        self.candidates += other.candidates;
        self.scored += other.scored;
        self.pruned += other.pruned;
        self.zero_bound += other.zero_bound;
        self.shared_token_candidates += other.shared_token_candidates;
        self.abandoned += other.abandoned;
        self.cancelled |= other.cancelled;
    }
}

/// A candidate of a bound-pruned top-k scan: its corpus index, an
/// *admissible* upper bound on its score (`f64::INFINITY` when the measure
/// cannot bound the pair) and its query-token overlap.
pub struct RankedCandidate {
    /// Corpus index of the candidate workflow.
    pub index: usize,
    /// Admissible upper bound on the candidate's score.
    pub bound: f64,
    /// Number of query label tokens the candidate shares.
    pub overlap: u32,
}

/// Sorts candidates into the canonical scan order every bound-pruned
/// search uses: bound descending, then overlap descending, then index
/// ascending.
pub fn sort_best_bound_first(candidates: &mut [RankedCandidate]) {
    candidates.sort_unstable_by(|a, b| {
        b.bound
            .partial_cmp(&a.bound)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.overlap.cmp(&a.overlap))
            .then_with(|| a.index.cmp(&b.index))
    });
}

/// The one prune-and-score loop behind every bound-pruned top-k scan — the
/// sequential indexed engine, each parallel worker's stride, and every
/// shard of a scatter-gather search all walk their candidates through
/// here, so the zero-bound short-circuit, the strict-below-floor pruning
/// and the stats accounting can never drift apart between engines.
///
/// `candidates` must arrive in [`sort_best_bound_first`] order (`total` is
/// its length, needed for prune accounting); `score` computes the exact
/// score of a candidate index and `id_of` resolves its workflow id.  Each
/// new worst-of-k is published to `threshold`, and the loop stops as soon
/// as the best remaining bound falls *strictly* below the threshold floor
/// — admissible, so the kept hits (returned in heap order; gather them
/// with [`merge_top_k`]) are exactly the true top-k contributions of this
/// candidate stream.
///
/// `cancel` is polled between candidates: once it fires, the remaining
/// stream is abandoned (`stats.abandoned`, `stats.cancelled`) and the hits
/// gathered so far are returned — each still an exact score, so a
/// deadline-bound caller can serve them as an honest *partial* result.
/// Non-deadline callers pass [`CancelToken::never`], which reduces the
/// poll to one relaxed load.
// lint:hot this loop runs once per candidate of every indexed search;
// wfsim_lint forbids lock acquisition and heap allocation inside it.
#[allow(clippy::too_many_arguments)] // the scan's full contract: stream + budget + cancellation
pub fn scan_ranked_candidates<'a, I, F, G>(
    candidates: I,
    total: usize,
    k: usize,
    threshold: &SearchThreshold,
    cancel: &crate::search::CancelToken,
    stats: &mut SearchStats,
    mut score: F,
    mut id_of: G,
) -> Vec<SearchHit>
where
    I: IntoIterator<Item = &'a RankedCandidate>,
    F: FnMut(usize) -> f64,
    G: FnMut(usize) -> WorkflowId,
{
    if k == 0 {
        stats.pruned += total;
        return Vec::new();
    }
    let mut top = TopK::new(k);
    let mut remaining = total;
    for candidate in candidates {
        // A fired deadline abandons the rest of the stream: everything
        // already kept is exact, so the caller can mark the merged result
        // degraded instead of blocking past its SLO.
        if cancel.is_cancelled() {
            stats.abandoned += remaining;
            stats.cancelled = true;
            break;
        }
        // Best-bound-first order: once the bound of the next candidate
        // drops below the floor, no later candidate can displace anything
        // (score <= bound < floor <= final k-th best), so stop scoring.
        if candidate.bound < threshold.floor() {
            stats.pruned += remaining;
            break;
        }
        remaining -= 1;
        // A zero bound pins the score to exactly 0 by admissibility,
        // without running the measure.
        let score = if candidate.bound == 0.0 {
            stats.zero_bound += 1;
            0.0
        } else {
            stats.scored += 1;
            score(candidate.index)
        };
        top.insert(SearchHit {
            id: id_of(candidate.index),
            score,
        });
        if let Some(worst) = top.worst_score() {
            threshold.observe(worst);
        }
    }
    top.into_hits()
}

/// Parallel variant of [`scan_ranked_candidates`]: the bound-ranked list
/// is dealt round-robin to `threads` racing workers, each walking its
/// stride through the sequential scan loop — private [`TopK`] heap, the
/// one shared `threshold` published via its lock-free `fetch_max`, the
/// `cancel` token polled per worker between candidates — and the workers'
/// heaps gathered through [`merge_top_k`] into the canonical order.
///
/// Bit-identical to the sequential scan over the same list, under every
/// interleaving: each stride preserves the global best-bound-first order
/// within the worker, and any floor a worker prunes against is a true
/// worst-of-k of `k` distinct exactly-scored candidates, so the final
/// k-th best is at least the floor and no pruned candidate could have
/// entered the merged top-k.  Racing changes how much work each worker
/// prunes — never the result.  Unlike the sequential scan (which returns
/// heap order for the caller to merge), this returns the merged, sorted
/// top-k.  Worker counters are accumulated into `stats`.
#[allow(clippy::too_many_arguments)] // the scan's full contract, plus the worker count
pub fn scan_ranked_candidates_parallel<F, G>(
    candidates: &[RankedCandidate],
    k: usize,
    threads: usize,
    threshold: &SearchThreshold,
    cancel: &crate::search::CancelToken,
    stats: &mut SearchStats,
    score: F,
    id_of: G,
) -> Vec<SearchHit>
where
    F: Fn(usize) -> f64 + Sync,
    G: Fn(usize) -> WorkflowId + Sync,
{
    let threads = threads.max(1).min(candidates.len().max(1));
    if threads <= 1 {
        let hits = scan_ranked_candidates(
            candidates.iter(),
            candidates.len(),
            k,
            threshold,
            cancel,
            stats,
            &score,
            &id_of,
        );
        return merge_top_k([hits], k);
    }
    let (parts, worker_stats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|worker| {
                let (score, id_of) = (&score, &id_of);
                scope.spawn(move || {
                    let mut local = SearchStats::default();
                    // Round-robin stride, preserving the global
                    // best-bound-first order within the worker.
                    let hits = scan_ranked_candidates(
                        candidates.iter().skip(worker).step_by(threads),
                        candidates.len().saturating_sub(worker).div_ceil(threads),
                        k,
                        threshold,
                        cancel,
                        &mut local,
                        score,
                        id_of,
                    );
                    (hits, local)
                })
            })
            .collect();
        let mut parts = Vec::with_capacity(threads);
        let mut merged = SearchStats::default();
        for w in workers {
            let (hits, s) = w.join().expect("parallel scan worker panicked");
            parts.push(hits);
            merged.merge(&s);
        }
        (merge_top_k(parts, k), merged)
    });
    stats.merge(&worker_stats);
    parts
}

/// A pull-based merge of several [`sort_best_bound_first`]-ordered
/// candidate lists into one global best-bound-first stream.
///
/// This is the scheduling core of the sharded scatter-gather search: each
/// shard contributes its ranked candidate list as a *cursor*, and the
/// frontier always yields the globally best-bound head across all cursors
/// — so a single [`scan_ranked_candidates`] over the frontier prunes with
/// the same power as one engine over the whole corpus, independent of how
/// the candidates are partitioned.
///
/// Cursor positions live in [`Cell`]s: the iterator advances them through
/// a shared reference, and after a (possibly cancelled) scan the caller
/// reads [`RankedFrontier::exhausted`] per cursor to report which shards
/// were fully covered.
///
/// Ties (equal bound and overlap) resolve to the earliest cursor — a
/// deterministic order; the final top-k content is insertion-order
/// independent anyway (every non-pruned candidate is scored exactly, and
/// [`TopK`] keeps the k best under the canonical score-then-id order).
pub struct RankedFrontier<'a> {
    lists: Vec<&'a [RankedCandidate]>,
    positions: Vec<Cell<usize>>,
}

impl<'a> RankedFrontier<'a> {
    /// A frontier over per-cursor candidate lists, each already in
    /// [`sort_best_bound_first`] order.
    pub fn new(lists: Vec<&'a [RankedCandidate]>) -> Self {
        let positions = lists.iter().map(|_| Cell::new(0)).collect();
        RankedFrontier { lists, positions }
    }

    /// Total candidates across all cursors.
    pub fn total(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    /// Number of cursors.
    pub fn cursors(&self) -> usize {
        self.lists.len()
    }

    /// How many candidates of cursor `list` have been yielded so far.
    pub fn position(&self, list: usize) -> usize {
        self.positions[list].get()
    }

    /// True when cursor `list` has been fully drained.
    pub fn exhausted(&self, list: usize) -> bool {
        self.positions[list].get() >= self.lists[list].len()
    }

    /// The merged best-bound-first stream (advances cursor positions as
    /// it is consumed).
    pub fn iter(&self) -> RankedFrontierIter<'_, 'a> {
        RankedFrontierIter { frontier: self }
    }
}

impl<'f, 'a> IntoIterator for &'f RankedFrontier<'a> {
    type Item = &'a RankedCandidate;
    type IntoIter = RankedFrontierIter<'f, 'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator of [`RankedFrontier::iter`].
pub struct RankedFrontierIter<'f, 'a> {
    frontier: &'f RankedFrontier<'a>,
}

impl<'f, 'a> Iterator for RankedFrontierIter<'f, 'a> {
    type Item = &'a RankedCandidate;

    /// Pops the globally best-bound candidate across all cursor heads
    /// (bound descending, then overlap descending, then earliest cursor).
    // lint:hot runs once per candidate of every sharded search; wfsim_lint
    // forbids lock acquisition and heap allocation here.
    fn next(&mut self) -> Option<&'a RankedCandidate> {
        let mut best: Option<(usize, &'a RankedCandidate)> = None;
        for (list, slice) in self.frontier.lists.iter().enumerate() {
            let pos = self.frontier.positions[list].get();
            let Some(head) = slice.get(pos) else {
                continue;
            };
            let better = match best {
                None => true,
                Some((_, leader)) => {
                    head.bound > leader.bound
                        || (head.bound == leader.bound && head.overlap > leader.overlap)
                }
            };
            if better {
                best = Some((list, head));
            }
        }
        let (list, head) = best?;
        self.frontier.positions[list].set(self.frontier.positions[list].get() + 1);
        Some(head)
    }
}

/// The index-accelerated top-k search engine.
pub struct IndexedSearchEngine<'s, S: CorpusScorer + ?Sized> {
    scorer: &'s S,
    index: Cow<'s, TokenIndex>,
    threads: usize,
}

impl<'s, S: CorpusScorer + ?Sized> IndexedSearchEngine<'s, S> {
    /// Builds the inverted index and wraps the measure.
    pub fn new(scorer: &'s S) -> Self {
        IndexedSearchEngine {
            index: Cow::Owned(TokenIndex::build(scorer)),
            scorer,
            threads: 4,
        }
    }

    /// Wraps a measure around an index built (or incrementally maintained)
    /// elsewhere — e.g. the corpus-resident index of a `Corpus` — making
    /// engine construction free of any per-query or per-engine index work.
    ///
    /// The index must cover exactly the scorer's corpus
    /// (`index.workflow_count() == scorer.corpus_len()`, asserted).
    pub fn with_index(scorer: &'s S, index: &'s TokenIndex) -> Self {
        assert_eq!(
            index.workflow_count(),
            scorer.corpus_len(),
            "index and corpus cover a different number of workflows"
        );
        IndexedSearchEngine {
            index: Cow::Borrowed(index),
            scorer,
            threads: 4,
        }
    }

    /// Sets the number of worker threads for
    /// [`IndexedSearchEngine::top_k_parallel`] (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The underlying inverted index.
    pub fn index(&self) -> &TokenIndex {
        &self.index
    }

    /// The `k` workflows most similar to the corpus workflow at
    /// `query` (which is itself excluded), best first.
    pub fn top_k(&self, query: usize, k: usize) -> Vec<SearchHit> {
        self.top_k_with_stats(query, k).0
    }

    /// [`IndexedSearchEngine::top_k`] plus pruning instrumentation.
    pub fn top_k_with_stats(&self, query: usize, k: usize) -> (Vec<SearchHit>, SearchStats) {
        let (candidates, mut stats) = self.ranked_candidates(query);
        // A fresh threshold makes the shared scan prune exactly on the
        // running worst-of-k, as a dedicated sequential loop would.
        let hits = scan_ranked_candidates(
            candidates.iter(),
            candidates.len(),
            k,
            &SearchThreshold::new(),
            &crate::search::CancelToken::never(),
            &mut stats,
            |i| self.scorer.score(query, i),
            |i| self.scorer.workflow_id(i).clone(),
        );
        (merge_top_k([hits], k), stats)
    }

    /// Parallel variant: the bound-ranked candidate list is dealt
    /// round-robin to workers, each keeping a private bounded top-k heap
    /// but publishing its worst-of-k to one shared [`SearchThreshold`], so
    /// every worker prunes against the best floor any of them has found.
    /// Lock-free and bit-identical to the sequential search.
    pub fn top_k_parallel(&self, query: usize, k: usize) -> Vec<SearchHit> {
        self.top_k_parallel_with_stats(query, k).0
    }

    /// [`IndexedSearchEngine::top_k_parallel`] plus instrumentation.
    pub fn top_k_parallel_with_stats(
        &self,
        query: usize,
        k: usize,
    ) -> (Vec<SearchHit>, SearchStats) {
        let (candidates, mut stats) = self.ranked_candidates(query);
        if k == 0 || candidates.is_empty() {
            stats.pruned = candidates.len();
            return (Vec::new(), stats);
        }
        if self.threads.min(candidates.len()) <= 1 {
            return self.top_k_with_stats(query, k);
        }
        let hits = scan_ranked_candidates_parallel(
            &candidates,
            k,
            self.threads,
            &SearchThreshold::new(),
            &crate::search::CancelToken::never(),
            &mut stats,
            |i| self.scorer.score(query, i),
            |i| self.scorer.workflow_id(i).clone(),
        );
        (hits, stats)
    }

    /// All candidates (corpus minus query) with their bounds and token
    /// overlaps, sorted best-bound-first.
    fn ranked_candidates(&self, query: usize) -> (Vec<RankedCandidate>, SearchStats) {
        let n = self.scorer.corpus_len();
        let overlaps = self
            .index
            .overlap_counts(self.scorer.label_token_ids(query));
        let query_id = self.scorer.workflow_id(query);
        let mut stats = SearchStats::default();
        let mut candidates = Vec::with_capacity(n.saturating_sub(1));
        for (i, &overlap) in overlaps.iter().enumerate().take(n) {
            if i == query || self.scorer.workflow_id(i) == query_id {
                continue;
            }
            if overlap > 0 {
                stats.shared_token_candidates += 1;
            }
            // Unbounded measures sort first (infinite bound) and are always
            // scored: the search degrades to an exhaustive profiled scan.
            let bound = self.scorer.upper_bound(query, i).unwrap_or(f64::INFINITY);
            candidates.push(RankedCandidate {
                index: i,
                bound,
                overlap,
            });
        }
        stats.candidates = candidates.len();
        sort_best_bound_first(&mut candidates);
        (candidates, stats)
    }
}

/// Exhaustively scores a corpus query with a [`CorpusScorer`] — the
/// reference the indexed engine is validated against, and the fallback for
/// callers that want profiled scoring without index construction.
pub fn scan_top_k<S: CorpusScorer + ?Sized>(scorer: &S, query: usize, k: usize) -> Vec<SearchHit> {
    let query_id = scorer.workflow_id(query);
    let mut hits: Vec<SearchHit> = (0..scorer.corpus_len())
        .filter(|&i| i != query && scorer.workflow_id(i) != query_id)
        .map(|i| SearchHit {
            id: scorer.workflow_id(i).clone(),
            score: scorer.score(query, i),
        })
        .collect();
    hits.sort_by(hit_ordering);
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy corpus-resident measure: workflows are token-id sets, the
    /// similarity is the exact Jaccard index, the bound the size quotient.
    struct ToyScorer {
        ids: Vec<WorkflowId>,
        tokens: Vec<Vec<u32>>,
        bounded: bool,
    }

    impl ToyScorer {
        fn new(token_sets: &[&[u32]], bounded: bool) -> Self {
            ToyScorer {
                ids: (0..token_sets.len())
                    .map(|i| WorkflowId::new(format!("w{i:02}")))
                    .collect(),
                tokens: token_sets.iter().map(|t| t.to_vec()).collect(),
                bounded,
            }
        }

        fn jaccard(&self, a: usize, b: usize) -> f64 {
            let (ta, tb) = (&self.tokens[a], &self.tokens[b]);
            if ta.is_empty() && tb.is_empty() {
                return 1.0;
            }
            let inter = ta.iter().filter(|t| tb.contains(t)).count();
            inter as f64 / (ta.len() + tb.len() - inter) as f64
        }
    }

    impl CorpusScorer for ToyScorer {
        fn corpus_len(&self) -> usize {
            self.ids.len()
        }

        fn workflow_id(&self, index: usize) -> &WorkflowId {
            &self.ids[index]
        }

        fn score(&self, query: usize, candidate: usize) -> f64 {
            self.jaccard(query, candidate)
        }

        fn upper_bound(&self, query: usize, candidate: usize) -> Option<f64> {
            if !self.bounded {
                return None;
            }
            let (a, b) = (self.tokens[query].len(), self.tokens[candidate].len());
            Some(if a == 0 && b == 0 {
                1.0
            } else if a == 0 || b == 0 {
                0.0
            } else {
                // Tighter and still admissible: intersection can be at most
                // min(a, b), but with *zero* shared tokens it is zero; use
                // the size quotient, which dominates the true Jaccard.
                a.min(b) as f64 / a.max(b) as f64
            })
        }

        fn label_token_ids(&self, index: usize) -> &[u32] {
            &self.tokens[index]
        }
    }

    fn corpus() -> ToyScorer {
        ToyScorer::new(
            &[
                &[1, 2, 3],       // query
                &[1, 2, 3],       // identical
                &[1, 2, 9],       // close
                &[2, 7],          // some overlap
                &[7, 8],          // disjoint
                &[4, 5, 6, 7, 8], // disjoint, larger
                &[],              // empty
            ],
            true,
        )
    }

    #[test]
    fn indexed_matches_exhaustive_scan_for_every_query_and_k() {
        let scorer = corpus();
        let engine = IndexedSearchEngine::new(&scorer).with_threads(3);
        for query in 0..scorer.corpus_len() {
            for k in [0, 1, 3, 6, 10] {
                let expected = scan_top_k(&scorer, query, k);
                assert_eq!(engine.top_k(query, k), expected, "q={query} k={k}");
                assert_eq!(
                    engine.top_k_parallel(query, k),
                    expected,
                    "parallel q={query} k={k}"
                );
            }
        }
    }

    #[test]
    fn pruning_actually_skips_candidates() {
        let scorer = corpus();
        let engine = IndexedSearchEngine::new(&scorer);
        let (hits, stats) = engine.top_k_with_stats(0, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id.as_str(), "w01");
        assert_eq!(stats.candidates, 6);
        assert!(
            stats.scored < stats.candidates,
            "bound pruning must skip some of the disjoint candidates: {stats:?}"
        );
        assert_eq!(
            stats.scored + stats.pruned + stats.zero_bound,
            stats.candidates
        );
    }

    #[test]
    fn unbounded_measures_fall_back_to_an_exhaustive_scan() {
        let tokens: Vec<&[u32]> = vec![&[1, 2], &[1], &[3], &[2, 3]];
        let scorer = ToyScorer::new(&tokens, false);
        let engine = IndexedSearchEngine::new(&scorer);
        let (hits, stats) = engine.top_k_with_stats(0, 3);
        assert_eq!(hits, scan_top_k(&scorer, 0, 3));
        assert_eq!(stats.scored, stats.candidates, "nothing can be pruned");
    }

    #[test]
    fn token_index_postings_and_overlaps() {
        let scorer = corpus();
        let index = TokenIndex::build(&scorer);
        assert_eq!(index.workflow_count(), 7);
        assert!(index.token_count() >= 8);
        assert_eq!(index.postings(1), &[0, 1, 2]);
        assert_eq!(index.postings(42), &[] as &[u32]);
        let overlaps = index.overlap_counts(&[1, 2, 3]);
        assert_eq!(overlaps[1], 3);
        assert_eq!(overlaps[3], 1);
        assert_eq!(overlaps[4], 0);
    }

    /// Rebuilds the index over a subset of the toy corpus — the reference
    /// for the incremental-maintenance equality tests.
    fn rebuilt(token_sets: &[&[u32]]) -> TokenIndex {
        TokenIndex::build(&ToyScorer::new(token_sets, true))
    }

    #[test]
    fn incremental_add_equals_rebuild() {
        let sets: Vec<&[u32]> = vec![&[1, 2, 3], &[2, 7], &[], &[4, 5]];
        let mut index = rebuilt(&sets[..2]);
        assert_eq!(index.add_workflow(sets[2]), 2);
        assert_eq!(index.add_workflow(sets[3]), 3);
        assert_eq!(index, rebuilt(&sets));
    }

    #[test]
    fn incremental_remove_equals_rebuild_and_shifts_indices() {
        let sets: Vec<&[u32]> = vec![&[1, 2, 3], &[2, 7], &[7, 8], &[1, 8]];
        let mut index = rebuilt(&sets);
        index.remove_workflow(1);
        let survivors: Vec<&[u32]> = vec![sets[0], sets[2], sets[3]];
        assert_eq!(index, rebuilt(&survivors));
        // Token 7 lost its only other holder's neighbour; postings shifted.
        assert_eq!(index.postings(7), &[1]);
        assert_eq!(index.postings(1), &[0, 2]);
        // Removing the rest empties the index completely.
        index.remove_workflow(2);
        index.remove_workflow(0);
        index.remove_workflow(0);
        assert_eq!(index, TokenIndex::default());
        assert_eq!(index.token_count(), 0, "empty posting lists are dropped");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn incremental_remove_rejects_out_of_range_indices() {
        let mut index = rebuilt(&[&[1, 2]]);
        index.remove_workflow(1);
    }

    #[test]
    fn engine_with_external_index_matches_engine_with_built_index() {
        let scorer = corpus();
        let index = TokenIndex::build(&scorer);
        let external = IndexedSearchEngine::with_index(&scorer, &index);
        let built = IndexedSearchEngine::new(&scorer);
        for query in 0..scorer.corpus_len() {
            assert_eq!(external.top_k(query, 3), built.top_k(query, 3));
        }
    }

    #[test]
    fn token_index_serde_roundtrip() {
        let scorer = corpus();
        let index = TokenIndex::build(&scorer);
        let value = serde::Serialize::serialize_value(&index);
        let back: TokenIndex = serde::Deserialize::deserialize_value(&value).unwrap();
        assert_eq!(back, index);
    }

    #[test]
    fn stats_fraction_is_sane() {
        let stats = SearchStats {
            candidates: 10,
            scored: 4,
            pruned: 5,
            zero_bound: 1,
            shared_token_candidates: 3,
            abandoned: 0,
            cancelled: false,
        };
        assert!((stats.pruned_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(SearchStats::default().pruned_fraction(), 0.0);
    }

    #[test]
    fn pre_fired_token_abandons_the_whole_stream() {
        let scorer = corpus();
        let mut candidates = Vec::new();
        for i in 1..scorer.corpus_len() {
            candidates.push(RankedCandidate {
                index: i,
                bound: scorer.upper_bound(0, i).unwrap_or(1.0),
                overlap: 1,
            });
        }
        sort_best_bound_first(&mut candidates);
        let token = crate::search::CancelToken::never();
        token.cancel();
        let mut stats = SearchStats::default();
        let hits = scan_ranked_candidates(
            candidates.iter(),
            candidates.len(),
            3,
            &SearchThreshold::new(),
            &token,
            &mut stats,
            |i| scorer.score(0, i),
            |i| scorer.workflow_id(i).clone(),
        );
        assert!(hits.is_empty(), "nothing was scored before the token fired");
        assert!(stats.cancelled);
        assert_eq!(stats.abandoned, candidates.len());
        assert_eq!(stats.scored, 0);
    }

    #[test]
    fn never_token_scan_is_identical_to_uncancelled_scan() {
        let scorer = corpus();
        let engine = IndexedSearchEngine::new(&scorer);
        for query in 0..scorer.corpus_len() {
            let (hits, stats) = engine.top_k_with_stats(query, 3);
            assert!(!stats.cancelled, "the never token must not fire");
            assert_eq!(stats.abandoned, 0);
            assert_eq!(hits, engine.top_k(query, 3));
        }
    }

    #[test]
    fn mid_frontier_cancellation_keeps_exactly_the_scored_prefix() {
        // A token fired *during* the merged scan must yield precisely the
        // candidates scored before it fired — exact scores, nothing
        // half-done — and report the rest abandoned.
        let rc = |index, bound| RankedCandidate {
            index,
            bound,
            overlap: 1,
        };
        let a = vec![rc(0, 0.9), rc(2, 0.5)];
        let b = vec![rc(1, 0.8), rc(3, 0.4)];
        let frontier = RankedFrontier::new(vec![&a, &b]);
        let bounds = [0.9, 0.8, 0.5, 0.4];
        let token = crate::search::CancelToken::never();
        let scored = std::cell::Cell::new(0usize);
        let mut stats = SearchStats::default();
        let hits = scan_ranked_candidates(
            &frontier,
            frontier.total(),
            4,
            &SearchThreshold::new(),
            &token,
            &mut stats,
            |i| {
                scored.set(scored.get() + 1);
                if scored.get() == 3 {
                    token.cancel();
                }
                bounds[i]
            },
            |i| WorkflowId::from(format!("w{i}")),
        );
        // The third score trips the token; the poll before the fourth
        // candidate sees it, so the global best-bound prefix 0, 1, 2 is
        // scored and candidate 3 is abandoned un-scored.
        assert!(stats.cancelled);
        assert_eq!(stats.scored, 3);
        assert_eq!(stats.abandoned, 1);
        let mut hits = crate::search::merge_top_k(vec![hits], 4);
        hits.sort_by(|x, y| x.id.cmp(&y.id));
        let got: Vec<(String, u64)> = hits
            .iter()
            .map(|h| (h.id.to_string(), h.score.to_bits()))
            .collect();
        let want: Vec<(String, u64)> = (0..3)
            .map(|i| (format!("w{i}"), bounds[i].to_bits()))
            .collect();
        assert_eq!(got, want, "partial hits are exact and complete");
    }

    #[test]
    fn frontier_merges_cursors_into_global_best_bound_order() {
        let rc = |index, bound, overlap| RankedCandidate {
            index,
            bound,
            overlap,
        };
        // Two sorted cursors with interleaved bounds, plus an empty one.
        let a = vec![rc(0, 0.9, 2), rc(1, 0.5, 1), rc(2, 0.1, 0)];
        let b = vec![rc(3, 0.7, 3), rc(4, 0.5, 4), rc(5, 0.5, 1)];
        let frontier = RankedFrontier::new(vec![&a, &[], &b]);
        assert_eq!(frontier.total(), 6);
        assert_eq!(frontier.cursors(), 3);
        assert!(frontier.exhausted(1), "the empty cursor starts exhausted");

        let order: Vec<usize> = frontier.iter().map(|c| c.index).collect();
        // 0.9 → 0.7 → the 0.5 tie resolves by overlap desc (4), then the
        // overlap-1 tie by earliest cursor (cursor 0's index 1 before
        // cursor 2's index 5) → 0.1.
        assert_eq!(order, vec![0, 3, 4, 1, 5, 2]);
        let bounds: Vec<f64> = frontier.iter().map(|c| c.bound).collect();
        assert!(bounds.is_empty(), "a drained frontier yields nothing more");
        assert!((0..3).all(|c| frontier.exhausted(c)));
        assert_eq!(frontier.position(0), 3);
        assert_eq!(frontier.position(2), 3);
    }

    #[test]
    fn partially_consumed_frontier_reports_cursor_positions() {
        let rc = |index, bound| RankedCandidate {
            index,
            bound,
            overlap: 0,
        };
        let a = vec![rc(0, 0.9), rc(1, 0.2)];
        let b = vec![rc(2, 0.8), rc(3, 0.7)];
        let frontier = RankedFrontier::new(vec![&a, &b]);
        let mut iter = frontier.iter();
        assert_eq!(iter.next().map(|c| c.index), Some(0));
        assert_eq!(iter.next().map(|c| c.index), Some(2));
        assert_eq!(iter.next().map(|c| c.index), Some(3));
        assert_eq!(frontier.position(0), 1);
        assert!(!frontier.exhausted(0));
        assert!(frontier.exhausted(1));
    }

    #[test]
    fn merged_stats_propagate_cancellation() {
        let mut a = SearchStats {
            abandoned: 3,
            cancelled: true,
            ..SearchStats::default()
        };
        let b = SearchStats {
            abandoned: 2,
            cancelled: false,
            ..SearchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.abandoned, 5);
        assert!(a.cancelled, "cancellation is sticky under merge");
    }
}
