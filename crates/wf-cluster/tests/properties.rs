//! Property-based tests for the clustering substrate.
//!
//! Random symmetric similarity matrices and random ground-truth labelings
//! exercise the invariants that must hold for *any* input, independent of
//! the concrete similarity measure.

use proptest::prelude::*;
use wf_cluster::{
    adjusted_rand_index, duplicate_pairs, hierarchical_clustering, kmedoids,
    normalized_mutual_information, purity, rand_index, threshold_clustering, Clustering, Linkage,
    PairwiseSimilarities,
};
use wf_model::WorkflowId;

/// Builds a valid symmetric similarity matrix (diagonal 1.0) from a flat
/// vector of upper-triangle values in [0, 1].
fn matrix_from_triangle(n: usize, triangle: &[f64]) -> PairwiseSimilarities {
    let ids: Vec<WorkflowId> = (0..n).map(|i| WorkflowId::new(format!("w{i}"))).collect();
    let mut values = vec![0.0; n * n];
    let mut idx = 0;
    for i in 0..n {
        values[i * n + i] = 1.0;
        for j in (i + 1)..n {
            let s = triangle[idx];
            idx += 1;
            values[i * n + j] = s;
            values[j * n + i] = s;
        }
    }
    PairwiseSimilarities::from_values(ids, values)
}

fn arb_matrix(max_items: usize) -> impl Strategy<Value = PairwiseSimilarities> {
    (2usize..=max_items).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(0.0f64..=1.0, pairs)
            .prop_map(move |triangle| matrix_from_triangle(n, &triangle))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn threshold_zero_merges_everything(matrix in arb_matrix(8)) {
        let clusters = threshold_clustering(&matrix, 0.0);
        prop_assert_eq!(clusters.cluster_count(), 1);
    }

    #[test]
    fn impossible_threshold_yields_singletons(matrix in arb_matrix(8)) {
        let clusters = threshold_clustering(&matrix, 1.0 + 1e-9);
        prop_assert_eq!(clusters.cluster_count(), matrix.len());
    }

    #[test]
    fn raising_the_threshold_never_merges_more(matrix in arb_matrix(8), low in 0.0f64..1.0, delta in 0.0f64..1.0) {
        let high = (low + delta).min(1.0);
        let coarse = threshold_clustering(&matrix, low);
        let fine = threshold_clustering(&matrix, high);
        // Every cluster of the stricter threshold is contained in one
        // cluster of the looser threshold (refinement).
        for i in 0..matrix.len() {
            for j in 0..matrix.len() {
                if fine.same_cluster(i, j) {
                    prop_assert!(coarse.same_cluster(i, j));
                }
            }
        }
        prop_assert!(fine.cluster_count() >= coarse.cluster_count());
    }

    #[test]
    fn duplicate_pairs_respect_the_threshold(matrix in arb_matrix(8), threshold in 0.0f64..=1.0) {
        for pair in duplicate_pairs(&matrix, threshold) {
            prop_assert!(pair.similarity >= threshold);
            prop_assert!(pair.first < pair.second);
        }
    }

    #[test]
    fn dendrogram_cuts_produce_the_requested_granularity(matrix in arb_matrix(8), k in 1usize..=8) {
        let dendrogram = hierarchical_clustering(&matrix, Linkage::Average);
        let clusters = dendrogram.cut_k(k);
        prop_assert_eq!(clusters.len(), matrix.len());
        prop_assert!(clusters.cluster_count() <= matrix.len());
        prop_assert!(clusters.cluster_count() >= 1);
        if k <= matrix.len() {
            prop_assert_eq!(clusters.cluster_count(), k.max(1));
        }
        prop_assert_eq!(dendrogram.cut_k(1).cluster_count(), 1);
    }

    #[test]
    fn dendrogram_merge_count_is_items_minus_one(matrix in arb_matrix(8)) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dendrogram = hierarchical_clustering(&matrix, linkage);
            prop_assert_eq!(dendrogram.merges().len(), matrix.len() - 1);
        }
    }

    #[test]
    fn kmedoids_invariants(matrix in arb_matrix(8), k in 1usize..=8) {
        let result = kmedoids(&matrix, k, 30);
        prop_assert_eq!(result.clustering.len(), matrix.len());
        prop_assert!(result.cost >= 0.0);
        prop_assert_eq!(result.medoids.len(), result.clustering.cluster_count());
        // Every medoid belongs to the cluster it represents.
        for (cluster, &medoid) in result.medoids.iter().enumerate() {
            prop_assert_eq!(result.clustering.cluster_of(medoid), cluster);
        }
        // The clustering never has more clusters than requested (after
        // clamping k to the item count).
        prop_assert!(result.clustering.cluster_count() <= k.clamp(1, matrix.len()));
    }

    #[test]
    fn quality_metrics_are_bounded_and_reward_the_truth(
        labels in proptest::collection::vec(0usize..4, 2..12),
        assignments in proptest::collection::vec(0usize..4, 2..12),
    ) {
        let n = labels.len().min(assignments.len());
        let labels = &labels[..n];
        let clusters = Clustering::from_assignments(&assignments[..n]);
        let p = purity(&clusters, labels);
        let ri = rand_index(&clusters, labels);
        let ari = adjusted_rand_index(&clusters, labels);
        let nmi = normalized_mutual_information(&clusters, labels);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&ri));
        prop_assert!(ari <= 1.0 + 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&nmi));

        // The truth clustered by itself is perfect under every metric.
        let perfect = Clustering::from_assignments(labels);
        prop_assert!((purity(&perfect, labels) - 1.0).abs() < 1e-12);
        prop_assert!((rand_index(&perfect, labels) - 1.0).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(&perfect, labels) - 1.0).abs() < 1e-9);
        prop_assert!((normalized_mutual_information(&perfect, labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_round_trips_between_groups_and_assignments(
        assignments in proptest::collection::vec(0usize..5, 1..16),
    ) {
        let clusters = Clustering::from_assignments(&assignments);
        let groups = clusters.groups();
        let rebuilt = Clustering::from_groups(&groups, assignments.len());
        prop_assert_eq!(rebuilt, clusters);
    }
}
