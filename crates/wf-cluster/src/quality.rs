//! External cluster quality metrics.
//!
//! The synthetic corpus of `wf-corpus` carries latent ground truth (every
//! workflow belongs to a functional family within a topic), so a clustering
//! produced from a similarity measure can be scored against that truth.
//! This module implements the standard external metrics: purity, the Rand
//! index, the adjusted Rand index (chance-corrected) and normalized mutual
//! information.  They are the usual way clustering-based evaluations of
//! workflow similarity (e.g. \[33\], \[34\], \[21\]) report quality.

use std::collections::BTreeMap;

use crate::clustering::Clustering;

/// Purity: the fraction of items that belong to the majority truth class of
/// their cluster.  1.0 means every cluster is "pure"; the metric does not
/// penalize splitting a class over many clusters.
///
/// # Panics
/// Panics when `truth.len() != clusters.len()`.
pub fn purity(clusters: &Clustering, truth: &[usize]) -> f64 {
    assert_eq!(clusters.len(), truth.len(), "one truth label per item");
    if clusters.is_empty() {
        return 1.0;
    }
    let mut correct = 0usize;
    for group in clusters.groups() {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for &item in &group {
            *counts.entry(truth[item]).or_insert(0) += 1;
        }
        correct += counts.values().copied().max().unwrap_or(0);
    }
    correct as f64 / clusters.len() as f64
}

/// The Rand index: the fraction of item pairs on which the clustering and
/// the truth agree (both together or both apart).
///
/// # Panics
/// Panics when `truth.len() != clusters.len()`.
pub fn rand_index(clusters: &Clustering, truth: &[usize]) -> f64 {
    assert_eq!(clusters.len(), truth.len(), "one truth label per item");
    let n = clusters.len();
    if n < 2 {
        return 1.0;
    }
    let mut agreements = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_cluster = clusters.same_cluster(i, j);
            let same_class = truth[i] == truth[j];
            if same_cluster == same_class {
                agreements += 1;
            }
            pairs += 1;
        }
    }
    agreements as f64 / pairs as f64
}

/// The adjusted Rand index (Hubert & Arabie): the Rand index corrected for
/// chance agreement.  1.0 for a perfect match, around 0 for a random
/// clustering, negative for worse-than-random ones.
///
/// # Panics
/// Panics when `truth.len() != clusters.len()`.
pub fn adjusted_rand_index(clusters: &Clustering, truth: &[usize]) -> f64 {
    assert_eq!(clusters.len(), truth.len(), "one truth label per item");
    let n = clusters.len();
    if n < 2 {
        return 1.0;
    }
    // Contingency table.
    let mut table: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut cluster_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    let mut class_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for (item, &t) in truth.iter().enumerate() {
        let c = clusters.cluster_of(item);
        *table.entry((c, t)).or_insert(0) += 1;
        *cluster_sizes.entry(c).or_insert(0) += 1;
        *class_sizes.entry(t).or_insert(0) += 1;
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_cells: f64 = table.values().map(|&v| choose2(v)).sum();
    let sum_clusters: f64 = cluster_sizes.values().map(|&v| choose2(v)).sum();
    let sum_classes: f64 = class_sizes.values().map(|&v| choose2(v)).sum();
    let total_pairs = choose2(n);
    let expected = sum_clusters * sum_classes / total_pairs;
    let max_index = 0.5 * (sum_clusters + sum_classes);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions are trivial (all-in-one or all
        // singletons); they agree perfectly iff the observed index equals
        // the maximum.
        return if (sum_cells - max_index).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_cells - expected) / (max_index - expected)
}

/// Normalized mutual information (arithmetic-mean normalization): how much
/// knowing the cluster tells about the truth class, scaled to \[0, 1\].
///
/// # Panics
/// Panics when `truth.len() != clusters.len()`.
pub fn normalized_mutual_information(clusters: &Clustering, truth: &[usize]) -> f64 {
    assert_eq!(clusters.len(), truth.len(), "one truth label per item");
    let n = clusters.len();
    if n == 0 {
        return 1.0;
    }
    let nf = n as f64;
    let mut joint: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut cluster_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    let mut class_sizes: BTreeMap<usize, usize> = BTreeMap::new();
    for (item, &t) in truth.iter().enumerate() {
        let c = clusters.cluster_of(item);
        *joint.entry((c, t)).or_insert(0) += 1;
        *cluster_sizes.entry(c).or_insert(0) += 1;
        *class_sizes.entry(t).or_insert(0) += 1;
    }
    let entropy = |sizes: &BTreeMap<usize, usize>| -> f64 {
        sizes
            .values()
            .map(|&v| {
                let p = v as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let h_clusters = entropy(&cluster_sizes);
    let h_classes = entropy(&class_sizes);
    let mut mutual = 0.0;
    for (&(c, t), &count) in &joint {
        let p_joint = count as f64 / nf;
        let p_c = cluster_sizes[&c] as f64 / nf;
        let p_t = class_sizes[&t] as f64 / nf;
        mutual += p_joint * (p_joint / (p_c * p_t)).ln();
    }
    let denom = 0.5 * (h_clusters + h_classes);
    if denom < 1e-12 {
        // Both partitions are trivial: identical by definition.
        return 1.0;
    }
    (mutual / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Vec<usize> {
        vec![0, 0, 0, 1, 1, 1]
    }

    #[test]
    fn perfect_clustering_scores_one_on_every_metric() {
        let clusters = Clustering::from_assignments(&[5, 5, 5, 9, 9, 9]);
        let truth = truth();
        assert_eq!(purity(&clusters, &truth), 1.0);
        assert_eq!(rand_index(&clusters, &truth), 1.0);
        assert!((adjusted_rand_index(&clusters, &truth) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&clusters, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_has_low_ari_but_decent_purity() {
        let clusters = Clustering::single_cluster(6);
        let truth = truth();
        assert!((purity(&clusters, &truth) - 0.5).abs() < 1e-12);
        assert!(adjusted_rand_index(&clusters, &truth).abs() < 1e-12);
        assert!(normalized_mutual_information(&clusters, &truth) < 1e-12);
    }

    #[test]
    fn singletons_have_perfect_purity_but_no_mutual_structure_reward() {
        let clusters = Clustering::singletons(6);
        let truth = truth();
        assert_eq!(purity(&clusters, &truth), 1.0);
        // ARI of all-singletons against a 2-class truth is 0 (chance level).
        assert!(adjusted_rand_index(&clusters, &truth).abs() < 1e-12);
        assert!(rand_index(&clusters, &truth) < 1.0);
    }

    #[test]
    fn one_misplaced_item_lowers_every_metric_without_reaching_zero() {
        let clusters = Clustering::from_assignments(&[0, 0, 1, 1, 1, 1]);
        let truth = truth();
        let p = purity(&clusters, &truth);
        let ri = rand_index(&clusters, &truth);
        let ari = adjusted_rand_index(&clusters, &truth);
        let nmi = normalized_mutual_information(&clusters, &truth);
        for (name, value) in [("purity", p), ("rand", ri), ("ari", ari), ("nmi", nmi)] {
            assert!(value > 0.0 && value < 1.0, "{name} = {value}");
        }
        // Hand computation for purity: clusters {0,1} pure, {2,3,4,5} has
        // majority 3 of 4 -> (2 + 3) / 6.
        assert!((p - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn rand_index_matches_hand_computation() {
        // clusters: {0,1},{2,3}; truth: {0,1,2},{3}.
        let clusters = Clustering::from_assignments(&[0, 0, 1, 1]);
        let truth = vec![0, 0, 0, 1];
        // Pairs: (0,1) both same/same -> agree; (0,2) apart/same -> disagree;
        // (0,3) apart/apart -> agree; (1,2) apart/same -> disagree;
        // (1,3) apart/apart -> agree; (2,3) same/apart -> disagree.
        assert!((rand_index(&clusters, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ari_is_invariant_to_label_permutation() {
        let truth = truth();
        let a = Clustering::from_assignments(&[0, 0, 1, 1, 1, 1]);
        let b = Clustering::from_assignments(&[7, 7, 3, 3, 3, 3]);
        assert!((adjusted_rand_index(&a, &truth) - adjusted_rand_index(&b, &truth)).abs() < 1e-12);
    }

    #[test]
    fn worse_than_random_clusterings_get_negative_ari() {
        // Perfectly anti-correlated: split every truth class across both
        // clusters as evenly as possible.
        let clusters = Clustering::from_assignments(&[0, 1, 0, 1, 0, 1]);
        let truth = vec![0, 0, 1, 1, 2, 2];
        assert!(adjusted_rand_index(&clusters, &truth) < 0.0);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let empty = Clustering::from_assignments(&[]);
        assert_eq!(purity(&empty, &[]), 1.0);
        assert_eq!(rand_index(&empty, &[]), 1.0);
        assert_eq!(adjusted_rand_index(&empty, &[]), 1.0);
        assert_eq!(normalized_mutual_information(&empty, &[]), 1.0);

        let one = Clustering::from_assignments(&[0]);
        assert_eq!(rand_index(&one, &[3]), 1.0);
        assert_eq!(adjusted_rand_index(&one, &[3]), 1.0);
    }

    #[test]
    #[should_panic(expected = "one truth label per item")]
    fn mismatched_lengths_panic() {
        let clusters = Clustering::from_assignments(&[0, 1]);
        let _ = purity(&clusters, &[0]);
    }

    #[test]
    fn nmi_rewards_informative_splits_more_than_uninformative_ones() {
        let truth = truth();
        let informative = Clustering::from_assignments(&[0, 0, 0, 1, 1, 1]);
        let uninformative = Clustering::from_assignments(&[0, 1, 0, 1, 0, 1]);
        assert!(
            normalized_mutual_information(&informative, &truth)
                > normalized_mutual_information(&uninformative, &truth)
        );
    }
}
