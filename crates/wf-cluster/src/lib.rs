//! # wf-cluster — clustering scientific workflows by similarity
//!
//! The paper's introduction motivates similarity measures with repository
//! management tasks beyond ranked retrieval: "the detection of functionally
//! equivalent workflows, grouping of workflows into functional clusters,
//! workflow retrieval, or the use of existing workflows in the design of
//! novel workflows" (Section 1), and several of the compared prior studies
//! (Santos et al. \[33\], Silva et al. \[34\], Jung et al. \[21\]) evaluate
//! their measures through clustering.  This crate provides that use case on
//! top of the `wf-sim` measures:
//!
//! * [`matrix`] — the pairwise similarity matrix of a workflow collection
//!   under any [`wf_sim::Measure`], computed sequentially or on several
//!   threads.
//! * [`clustering`] — the [`Clustering`] type: an assignment of workflows to
//!   clusters, convertible between assignment-vector and group-list form.
//! * [`hierarchical`] — agglomerative clustering with single, complete or
//!   average linkage, producing a full dendrogram that can be cut at a
//!   similarity threshold or at a target cluster count.
//! * [`threshold`] — connected-component clustering at a similarity
//!   threshold and near-duplicate detection (the "functionally equivalent
//!   workflows" task).
//! * [`kmedoids`] — k-medoids (PAM-style) partitioning for a fixed number
//!   of clusters.
//! * [`quality`] — external cluster quality metrics against the latent
//!   ground truth of the synthetic corpus (purity, Rand index, adjusted
//!   Rand index, normalized mutual information).
//!
//! # Example
//!
//! ```
//! use wf_cluster::{hierarchical_clustering, Linkage, PairwiseSimilarities};
//! use wf_model::{builder::WorkflowBuilder, ModuleType};
//! use wf_sim::{SimilarityConfig, WorkflowSimilarity};
//!
//! let chain = |id: &str, labels: &[&str]| {
//!     let mut b = WorkflowBuilder::new(id);
//!     for l in labels {
//!         b = b.module(*l, ModuleType::WsdlService, |m| m);
//!     }
//!     for w in labels.windows(2) {
//!         b = b.link(w[0], w[1]);
//!     }
//!     b.build().unwrap()
//! };
//! let workflows = vec![
//!     chain("a", &["fetch", "blast", "render"]),
//!     chain("b", &["fetch", "blast", "plot"]),
//!     chain("c", &["parse", "cluster"]),
//!     chain("d", &["parse", "cluster", "plot"]),
//! ];
//!
//! let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
//! let matrix = PairwiseSimilarities::compute(&workflows, &measure);
//! let clusters = hierarchical_clustering(&matrix, Linkage::Average).cut_k(2);
//!
//! assert_eq!(clusters.cluster_count(), 2);
//! assert!(clusters.same_cluster(0, 1));   // the two BLAST workflows
//! assert!(clusters.same_cluster(2, 3));   // the two clustering workflows
//! assert!(!clusters.same_cluster(0, 2));
//! ```

#![deny(unsafe_code)]

pub mod clustering;
pub mod hierarchical;
pub mod kmedoids;
pub mod matrix;
pub mod quality;
pub mod threshold;

pub use clustering::Clustering;
pub use hierarchical::{hierarchical_clustering, Dendrogram, Linkage, MergeStep};
pub use kmedoids::{kmedoids, KMedoidsResult};
pub use matrix::PairwiseSimilarities;
pub use quality::{adjusted_rand_index, normalized_mutual_information, purity, rand_index};
pub use threshold::{duplicate_pairs, threshold_clustering, DuplicatePair};
