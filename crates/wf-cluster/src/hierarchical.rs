//! Agglomerative hierarchical clustering.
//!
//! The classic bottom-up procedure: start from singleton clusters and
//! repeatedly merge the two most similar clusters, where cluster-to-cluster
//! similarity is defined by the linkage (single = most similar pair,
//! complete = least similar pair, average = mean pairwise similarity).  The
//! full merge history is kept as a [`Dendrogram`] so one clustering run can
//! be cut at any similarity threshold or cluster count afterwards — exactly
//! how clustering-based evaluations of workflow similarity measures (e.g.
//! Santos et al. \[33\], Jung et al. \[21\]) sweep their granularity
//! parameter.

use crate::clustering::Clustering;
use crate::matrix::PairwiseSimilarities;

/// The cluster-to-cluster similarity definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Similarity of the most similar cross-cluster pair.
    Single,
    /// Similarity of the least similar cross-cluster pair.
    Complete,
    /// Mean similarity over all cross-cluster pairs (UPGMA).
    #[default]
    Average,
}

impl Linkage {
    /// A short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
        }
    }
}

/// One merge performed by the agglomerative procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeStep {
    /// Dendrogram node id of the first merged cluster.
    pub first: usize,
    /// Dendrogram node id of the second merged cluster.
    pub second: usize,
    /// The linkage similarity at which the merge happened.
    pub similarity: f64,
    /// The dendrogram node id of the merged cluster (`n + step index`).
    pub merged: usize,
}

/// The full merge history of one agglomerative clustering run.
///
/// Leaves `0..n` are the workflows (in matrix order); internal nodes are
/// numbered `n..2n-1` in merge order.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    item_count: usize,
    linkage: Linkage,
    merges: Vec<MergeStep>,
}

impl Dendrogram {
    /// Number of clustered items.
    pub fn item_count(&self) -> usize {
        self.item_count
    }

    /// The linkage the dendrogram was built with.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// The merge steps in the order they were performed (monotonically
    /// non-increasing similarity for complete and average linkage; single
    /// linkage is monotone as well because similarity only grows by taking
    /// maxima).
    pub fn merges(&self) -> &[MergeStep] {
        &self.merges
    }

    /// Cuts the dendrogram so that only merges with similarity ≥ `threshold`
    /// are applied.
    pub fn cut_at(&self, threshold: f64) -> Clustering {
        self.cut(|step| step.similarity >= threshold, usize::MAX)
    }

    /// Cuts the dendrogram into (at most) `k` clusters by undoing the last
    /// merges.  Asking for more clusters than items yields singletons.
    pub fn cut_k(&self, k: usize) -> Clustering {
        if k == 0 || self.item_count == 0 {
            return Clustering::singletons(self.item_count);
        }
        let merges_to_apply = self.item_count.saturating_sub(k);
        self.cut(|_| true, merges_to_apply)
    }

    fn cut(&self, accept: impl Fn(&MergeStep) -> bool, max_merges: usize) -> Clustering {
        let n = self.item_count;
        // Union-find over leaves; internal node ids map onto their leaf set
        // through the union operations.
        let mut parent: Vec<usize> = (0..2 * n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut applied = 0usize;
        for step in &self.merges {
            if applied >= max_merges {
                break;
            }
            if !accept(step) {
                continue;
            }
            let a = find(&mut parent, step.first);
            let b = find(&mut parent, step.second);
            parent[a] = step.merged;
            parent[b] = step.merged;
            applied += 1;
        }
        let assignments: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        Clustering::from_assignments(&assignments)
    }
}

/// Runs agglomerative clustering over a similarity matrix.
pub fn hierarchical_clustering(matrix: &PairwiseSimilarities, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    // Active clusters: dendrogram node id plus member leaf indices.
    let mut clusters: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut next_node = n;
    while clusters.len() > 1 {
        // Find the pair of active clusters with the highest linkage
        // similarity.  O(k²·|a|·|b|) per round is fine for corpus sizes in
        // the low thousands; the similarity matrix lookups dominate anyway.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let s = linkage_similarity(matrix, &clusters[i].1, &clusters[j].1, linkage);
                let better = match best {
                    None => true,
                    Some((_, _, bs)) => s > bs,
                };
                if better {
                    best = Some((i, j, s));
                }
            }
        }
        let (i, j, similarity) = best.expect("at least two clusters remain");
        let (node_j, members_j) = clusters.swap_remove(j);
        let (node_i, members_i) = clusters.swap_remove(i.min(clusters.len()));
        let mut merged_members = members_i;
        merged_members.extend(members_j);
        merges.push(MergeStep {
            first: node_i,
            second: node_j,
            similarity,
            merged: next_node,
        });
        clusters.push((next_node, merged_members));
        next_node += 1;
    }
    Dendrogram {
        item_count: n,
        linkage,
        merges,
    }
}

fn linkage_similarity(
    matrix: &PairwiseSimilarities,
    a: &[usize],
    b: &[usize],
    linkage: Linkage,
) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut count = 0usize;
    for &x in a {
        for &y in b {
            let s = matrix.similarity(x, y);
            min = min.min(s);
            max = max.max(s);
            sum += s;
            count += 1;
        }
    }
    match linkage {
        Linkage::Single => max,
        Linkage::Complete => min,
        Linkage::Average => sum / count as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::WorkflowId;

    /// A block-structured toy matrix: items 0-2 are one tight group, items
    /// 3-4 another, cross-group similarity is low.
    fn block_matrix() -> PairwiseSimilarities {
        let ids: Vec<WorkflowId> = (0..5).map(|i| WorkflowId::new(format!("w{i}"))).collect();
        let s = vec![
            1.0, 0.9, 0.8, 0.1, 0.2, //
            0.9, 1.0, 0.85, 0.15, 0.1, //
            0.8, 0.85, 1.0, 0.1, 0.1, //
            0.1, 0.15, 0.1, 1.0, 0.7, //
            0.2, 0.1, 0.1, 0.7, 1.0,
        ];
        PairwiseSimilarities::from_values(ids, s)
    }

    #[test]
    fn two_block_matrix_recovers_two_clusters() {
        let matrix = block_matrix();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dendrogram = hierarchical_clustering(&matrix, linkage);
            let clusters = dendrogram.cut_k(2);
            assert_eq!(clusters.cluster_count(), 2, "{}", linkage.name());
            assert!(clusters.same_cluster(0, 1));
            assert!(clusters.same_cluster(0, 2));
            assert!(clusters.same_cluster(3, 4));
            assert!(!clusters.same_cluster(0, 3));
        }
    }

    #[test]
    fn cut_at_threshold_controls_granularity() {
        let matrix = block_matrix();
        let dendrogram = hierarchical_clustering(&matrix, Linkage::Average);
        let strict = dendrogram.cut_at(0.95);
        assert_eq!(strict.cluster_count(), 5, "nothing reaches 0.95");
        let loose = dendrogram.cut_at(0.0);
        assert_eq!(loose.cluster_count(), 1, "everything merges at threshold 0");
        let medium = dendrogram.cut_at(0.6);
        assert_eq!(medium.cluster_count(), 2);
    }

    #[test]
    fn merge_count_is_items_minus_one() {
        let matrix = block_matrix();
        let dendrogram = hierarchical_clustering(&matrix, Linkage::Complete);
        assert_eq!(dendrogram.item_count(), 5);
        assert_eq!(dendrogram.merges().len(), 4);
        assert_eq!(dendrogram.linkage(), Linkage::Complete);
    }

    #[test]
    fn merge_similarities_are_monotone_for_average_linkage() {
        let matrix = block_matrix();
        let dendrogram = hierarchical_clustering(&matrix, Linkage::Average);
        let sims: Vec<f64> = dendrogram.merges().iter().map(|m| m.similarity).collect();
        for pair in sims.windows(2) {
            assert!(
                pair[0] >= pair[1] - 1e-12,
                "merges happen at non-increasing similarity"
            );
        }
    }

    #[test]
    fn cut_k_edge_cases() {
        let matrix = block_matrix();
        let dendrogram = hierarchical_clustering(&matrix, Linkage::Average);
        assert_eq!(
            dendrogram.cut_k(10).cluster_count(),
            5,
            "more clusters than items"
        );
        assert_eq!(dendrogram.cut_k(1).cluster_count(), 1);
        assert_eq!(
            dendrogram.cut_k(0).cluster_count(),
            5,
            "k = 0 falls back to singletons"
        );
        assert_eq!(dendrogram.cut_k(5).cluster_count(), 5);
    }

    #[test]
    fn single_item_and_empty_matrices() {
        let empty = PairwiseSimilarities::from_values(vec![], vec![]);
        let dendrogram = hierarchical_clustering(&empty, Linkage::Single);
        assert_eq!(dendrogram.merges().len(), 0);
        assert!(dendrogram.cut_k(3).is_empty());

        let one = PairwiseSimilarities::from_values(vec![WorkflowId::new("x")], vec![1.0]);
        let dendrogram = hierarchical_clustering(&one, Linkage::Single);
        assert_eq!(dendrogram.merges().len(), 0);
        assert_eq!(dendrogram.cut_at(0.5).cluster_count(), 1);
    }

    #[test]
    fn single_and_complete_linkage_differ_on_a_chain() {
        // A "chain" of similarities: 0-1 high, 1-2 high, 0-2 low.  Single
        // linkage chains all three together at a high threshold; complete
        // linkage requires the weak 0-2 similarity.
        let ids: Vec<WorkflowId> = (0..3).map(|i| WorkflowId::new(format!("w{i}"))).collect();
        let s = vec![
            1.0, 0.9, 0.1, //
            0.9, 1.0, 0.9, //
            0.1, 0.9, 1.0,
        ];
        let matrix = PairwiseSimilarities::from_values(ids, s);
        let single = hierarchical_clustering(&matrix, Linkage::Single).cut_at(0.8);
        let complete = hierarchical_clustering(&matrix, Linkage::Complete).cut_at(0.8);
        assert_eq!(single.cluster_count(), 1);
        assert!(complete.cluster_count() > 1);
    }
}
