//! Pairwise similarity matrices over a workflow collection.
//!
//! Every clustering algorithm in this crate consumes a
//! [`PairwiseSimilarities`] matrix: the symmetric matrix of workflow-level
//! similarities under one measure.  Computing it is the expensive part of
//! clustering (O(n²) workflow comparisons), so a scoped-thread parallel
//! builder is provided alongside the sequential one.  The parallel builder
//! is lock-free: the dense value buffer is split into disjoint row slices
//! via `chunks_mut`, each worker owns an interleaved subset of rows, and a
//! cheap sequential pass mirrors the upper triangle afterwards — no mutex
//! anywhere near the `measure` calls.
//!
//! The profiled builders ([`PairwiseSimilarities::compute_profiled`] and
//! its parallel twin) score a prebuilt [`Corpus`] by index from its cached
//! profiles — no per-pair re-derivation of projections, lowercased labels
//! or token sets — and are bit-identical to the legacy per-pair path.

use wf_model::{Workflow, WorkflowId};
use wf_sim::{Corpus, Measure};

/// A symmetric matrix of pairwise workflow similarities.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseSimilarities {
    ids: Vec<WorkflowId>,
    /// Row-major full matrix; kept dense for simplicity (corpus sizes are in
    /// the low thousands, so the matrix is at most a few tens of MB).
    values: Vec<f64>,
}

impl PairwiseSimilarities {
    /// Computes the matrix sequentially.
    pub fn compute<M: Measure + ?Sized>(workflows: &[Workflow], measure: &M) -> Self {
        let n = workflows.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            values[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let s = measure.measure(&workflows[i], &workflows[j]);
                values[i * n + j] = s;
                values[j * n + i] = s;
            }
        }
        PairwiseSimilarities {
            ids: workflows.iter().map(|wf| wf.id.clone()).collect(),
            values,
        }
    }

    /// Computes the matrix on `threads` std scoped threads, splitting the
    /// upper triangle by rows.
    ///
    /// Each worker receives exclusive `&mut` access to an interleaved
    /// subset of matrix rows (disjoint slices carved out of the dense
    /// buffer with `chunks_mut`), writes its cells directly, and a
    /// sequential O(n²) mirror pass fills the lower triangle after the
    /// join.  Workers never contend on a lock, and the result is
    /// bit-identical to [`PairwiseSimilarities::compute`].
    pub fn compute_parallel<M: Measure + Sync + ?Sized>(
        workflows: &[Workflow],
        measure: &M,
        threads: usize,
    ) -> Self {
        let n = workflows.len();
        if n == 0 || threads <= 1 {
            return PairwiseSimilarities::compute(workflows, measure);
        }
        let threads = threads.min(n);
        let mut values = vec![0.0; n * n];
        {
            // Deal the rows round-robin: row i goes to worker i % threads,
            // which balances the triangular load like the seed interleaving
            // did, but with direct ownership instead of a result mutex.
            let mut buckets: Vec<Vec<(usize, &mut [f64])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, row) in values.chunks_mut(n).enumerate() {
                buckets[i % threads].push((i, row));
            }
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for (i, row) in bucket {
                            row[i] = 1.0;
                            for j in (i + 1)..n {
                                row[j] = measure.measure(&workflows[i], &workflows[j]);
                            }
                        }
                    });
                }
            });
        }
        // Mirror the upper triangle into the lower one.
        for i in 0..n {
            for j in (i + 1)..n {
                values[j * n + i] = values[i * n + j];
            }
        }
        PairwiseSimilarities {
            ids: workflows.iter().map(|wf| wf.id.clone()).collect(),
            values,
        }
    }

    /// Computes the matrix of a prebuilt [`Corpus`] from its cached
    /// profiles, addressed by corpus index.
    ///
    /// Bit-identical to [`PairwiseSimilarities::compute`] over
    /// `corpus.workflows()` with the same configured measure — the profiled
    /// scorer reproduces the per-pair pipeline exactly — but without
    /// re-deriving any per-workflow feature per pair.
    pub fn compute_profiled(corpus: &Corpus) -> Self {
        let n = corpus.len();
        let scorer = corpus.matrix_scorer();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            values[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let s = scorer.score(i, j);
                values[i * n + j] = s;
                values[j * n + i] = s;
            }
        }
        PairwiseSimilarities {
            ids: corpus.ids().to_vec(),
            values,
        }
    }

    /// [`PairwiseSimilarities::compute_profiled`] on `threads` scoped
    /// threads, with the same lock-free row-ownership scheme as
    /// [`PairwiseSimilarities::compute_parallel`].
    pub fn compute_profiled_parallel(corpus: &Corpus, threads: usize) -> Self {
        let n = corpus.len();
        if n == 0 || threads <= 1 {
            return PairwiseSimilarities::compute_profiled(corpus);
        }
        let threads = threads.min(n);
        let scorer = corpus.matrix_scorer();
        let mut values = vec![0.0; n * n];
        {
            let mut buckets: Vec<Vec<(usize, &mut [f64])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, row) in values.chunks_mut(n).enumerate() {
                buckets[i % threads].push((i, row));
            }
            std::thread::scope(|scope| {
                for bucket in buckets {
                    let scorer = &scorer;
                    scope.spawn(move || {
                        for (i, row) in bucket {
                            row[i] = 1.0;
                            for (j, cell) in row.iter_mut().enumerate().skip(i + 1) {
                                *cell = scorer.score(i, j);
                            }
                        }
                    });
                }
            });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                values[j * n + i] = values[i * n + j];
            }
        }
        PairwiseSimilarities {
            ids: corpus.ids().to_vec(),
            values,
        }
    }

    /// Builds a matrix directly from precomputed values (row-major, n×n).
    ///
    /// # Panics
    /// Panics when `values.len() != ids.len()²`.
    pub fn from_values(ids: Vec<WorkflowId>, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), ids.len() * ids.len(), "matrix must be n×n");
        PairwiseSimilarities { ids, values }
    }

    /// Number of workflows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the matrix covers no workflows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The workflow ids, in matrix order.
    pub fn ids(&self) -> &[WorkflowId] {
        &self.ids
    }

    /// The id of the workflow at matrix index `i`.
    pub fn id(&self, i: usize) -> &WorkflowId {
        &self.ids[i]
    }

    /// The matrix index of a workflow id.
    pub fn index_of(&self, id: &WorkflowId) -> Option<usize> {
        self.ids.iter().position(|x| x == id)
    }

    /// The similarity of the workflows at indices `i` and `j`.
    pub fn similarity(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.ids.len() + j]
    }

    /// The dissimilarity `1 − similarity` of the workflows at `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        1.0 - self.similarity(i, j)
    }

    /// The mean off-diagonal similarity (0 for matrices of fewer than two
    /// workflows) — a useful corpus-level statistic for picking clustering
    /// thresholds.
    pub fn mean_similarity(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += self.similarity(i, j);
            }
        }
        sum / (n * (n - 1) / 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};
    use wf_sim::{LabelVectorSimilarity, SimilarityConfig, WorkflowSimilarity};

    fn chain(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn corpus() -> Vec<Workflow> {
        vec![
            chain("a", &["fetch", "blast", "render"]),
            chain("b", &["fetch", "blast", "plot"]),
            chain("c", &["parse", "cluster"]),
            chain("d", &["parse", "cluster", "plot"]),
        ]
    }

    #[test]
    fn diagonal_is_one_and_matrix_is_symmetric() {
        let wfs = corpus();
        let measure = LabelVectorSimilarity::new();
        let matrix = PairwiseSimilarities::compute(&wfs, &measure);
        assert_eq!(matrix.len(), 4);
        for i in 0..4 {
            assert_eq!(matrix.similarity(i, i), 1.0);
            for j in 0..4 {
                assert!((matrix.similarity(i, j) - matrix.similarity(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn related_workflows_score_higher_than_unrelated_ones() {
        let wfs = corpus();
        let measure = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
        let matrix = PairwiseSimilarities::compute(&wfs, &measure);
        let a = matrix.index_of(&WorkflowId::new("a")).unwrap();
        let b = matrix.index_of(&WorkflowId::new("b")).unwrap();
        let c = matrix.index_of(&WorkflowId::new("c")).unwrap();
        assert!(matrix.similarity(a, b) > matrix.similarity(a, c));
        assert!((matrix.distance(a, b) - (1.0 - matrix.similarity(a, b))).abs() < 1e-12);
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        let wfs = corpus();
        let measure = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
        let sequential = PairwiseSimilarities::compute(&wfs, &measure);
        for threads in [2, 3, 8] {
            let parallel = PairwiseSimilarities::compute_parallel(&wfs, &measure, threads);
            assert_eq!(parallel.ids(), sequential.ids());
            for i in 0..wfs.len() {
                for j in 0..wfs.len() {
                    assert!(
                        (parallel.similarity(i, j) - sequential.similarity(i, j)).abs() < 1e-12,
                        "threads={threads}, cell ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn profiled_matrix_is_bit_identical_to_the_legacy_path() {
        let wfs = corpus();
        let config = SimilarityConfig::best_module_sets();
        let measure = WorkflowSimilarity::new(config.clone());
        let legacy = PairwiseSimilarities::compute(&wfs, &measure);
        let shared = Corpus::build(config, wfs.clone());
        let profiled = PairwiseSimilarities::compute_profiled(&shared);
        assert_eq!(profiled, legacy, "sequential profiled != legacy");
        for threads in [2, 3, 8] {
            assert_eq!(
                PairwiseSimilarities::compute_profiled_parallel(&shared, threads),
                legacy,
                "parallel profiled != legacy, threads={threads}"
            );
        }
    }

    #[test]
    fn empty_profiled_corpus_produces_an_empty_matrix() {
        let shared = Corpus::build(SimilarityConfig::best_module_sets(), Vec::new());
        assert!(PairwiseSimilarities::compute_profiled(&shared).is_empty());
        assert!(PairwiseSimilarities::compute_profiled_parallel(&shared, 4).is_empty());
    }

    #[test]
    fn empty_collection_produces_an_empty_matrix() {
        let measure = LabelVectorSimilarity::new();
        let matrix = PairwiseSimilarities::compute(&[], &measure);
        assert!(matrix.is_empty());
        assert_eq!(matrix.mean_similarity(), 0.0);
        let parallel = PairwiseSimilarities::compute_parallel(&[], &measure, 4);
        assert!(parallel.is_empty());
    }

    #[test]
    fn mean_similarity_averages_the_off_diagonal() {
        let ids = vec![WorkflowId::new("x"), WorkflowId::new("y")];
        let matrix = PairwiseSimilarities::from_values(ids, vec![1.0, 0.4, 0.4, 1.0]);
        assert!((matrix.mean_similarity() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn from_values_rejects_non_square_input() {
        let _ = PairwiseSimilarities::from_values(vec![WorkflowId::new("x")], vec![1.0, 0.5]);
    }

    #[test]
    fn index_lookup_by_id() {
        let wfs = corpus();
        let matrix = PairwiseSimilarities::compute(&wfs, &LabelVectorSimilarity::new());
        assert_eq!(matrix.index_of(&WorkflowId::new("c")), Some(2));
        assert_eq!(matrix.id(2), &WorkflowId::new("c"));
        assert_eq!(matrix.index_of(&WorkflowId::new("zzz")), None);
    }
}
