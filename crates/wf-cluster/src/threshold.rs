//! Threshold clustering and near-duplicate detection.
//!
//! The simplest clustering the paper's use cases call for: treat every pair
//! of workflows whose similarity reaches a threshold as connected, and take
//! the connected components as clusters.  With a high threshold this is the
//! paper's "detection of functionally equivalent workflows" (Section 1) —
//! near-duplicate groups; with a lower threshold it yields coarse functional
//! groups comparable to a dendrogram cut.

use crate::clustering::Clustering;
use crate::matrix::PairwiseSimilarities;

/// A pair of workflows whose similarity reaches the duplicate threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DuplicatePair {
    /// Matrix index of the first workflow.
    pub first: usize,
    /// Matrix index of the second workflow (always greater than `first`).
    pub second: usize,
    /// Their similarity.
    pub similarity: f64,
}

/// Clusters workflows into the connected components of the graph that links
/// every pair with similarity ≥ `threshold`.
pub fn threshold_clustering(matrix: &PairwiseSimilarities, threshold: f64) -> Clustering {
    let n = matrix.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if matrix.similarity(i, j) >= threshold {
                let a = find(&mut parent, i);
                let b = find(&mut parent, j);
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let assignments: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    Clustering::from_assignments(&assignments)
}

/// All workflow pairs with similarity ≥ `threshold`, sorted by descending
/// similarity — the near-duplicate report for a repository.
pub fn duplicate_pairs(matrix: &PairwiseSimilarities, threshold: f64) -> Vec<DuplicatePair> {
    let n = matrix.len();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let similarity = matrix.similarity(i, j);
            if similarity >= threshold {
                pairs.push(DuplicatePair {
                    first: i,
                    second: j,
                    similarity,
                });
            }
        }
    }
    pairs.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .expect("similarities are finite")
            .then_with(|| (a.first, a.second).cmp(&(b.first, b.second)))
    });
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::WorkflowId;

    fn toy_matrix() -> PairwiseSimilarities {
        let ids: Vec<WorkflowId> = (0..4).map(|i| WorkflowId::new(format!("w{i}"))).collect();
        // 0 and 1 are near duplicates; 2 is loosely related to 1; 3 is
        // isolated.
        let s = vec![
            1.0, 0.97, 0.30, 0.05, //
            0.97, 1.0, 0.55, 0.10, //
            0.30, 0.55, 1.0, 0.12, //
            0.05, 0.10, 0.12, 1.0,
        ];
        PairwiseSimilarities::from_values(ids, s)
    }

    #[test]
    fn high_threshold_finds_only_the_duplicate_pair() {
        let matrix = toy_matrix();
        let clusters = threshold_clustering(&matrix, 0.9);
        assert_eq!(clusters.cluster_count(), 3);
        assert!(clusters.same_cluster(0, 1));
        assert!(!clusters.same_cluster(1, 2));
        assert!(!clusters.same_cluster(2, 3));
    }

    #[test]
    fn lower_threshold_chains_components_together() {
        let matrix = toy_matrix();
        let clusters = threshold_clustering(&matrix, 0.5);
        // 0-1 (0.97) and 1-2 (0.55) connect; 3 stays alone.
        assert_eq!(clusters.cluster_count(), 2);
        assert!(clusters.same_cluster(0, 2));
        assert!(!clusters.same_cluster(0, 3));
    }

    #[test]
    fn zero_threshold_merges_everything_and_impossible_threshold_nothing() {
        let matrix = toy_matrix();
        assert_eq!(threshold_clustering(&matrix, 0.0).cluster_count(), 1);
        assert_eq!(threshold_clustering(&matrix, 1.1).cluster_count(), 4);
    }

    #[test]
    fn duplicate_pairs_are_sorted_by_similarity() {
        let matrix = toy_matrix();
        let pairs = duplicate_pairs(&matrix, 0.5);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].first, pairs[0].second), (0, 1));
        assert!((pairs[0].similarity - 0.97).abs() < 1e-12);
        assert_eq!((pairs[1].first, pairs[1].second), (1, 2));
    }

    #[test]
    fn duplicate_pairs_with_impossible_threshold_is_empty() {
        let matrix = toy_matrix();
        assert!(duplicate_pairs(&matrix, 0.999).is_empty());
    }

    #[test]
    fn empty_matrix_is_handled() {
        let empty = PairwiseSimilarities::from_values(vec![], vec![]);
        assert!(threshold_clustering(&empty, 0.5).is_empty());
        assert!(duplicate_pairs(&empty, 0.5).is_empty());
    }
}
