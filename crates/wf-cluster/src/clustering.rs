//! The [`Clustering`] type: an assignment of items to clusters.

use std::collections::BTreeMap;

/// A clustering of `n` items, stored as one cluster id per item.
///
/// Cluster ids are dense (`0..cluster_count()`) but carry no meaning beyond
/// identity; two clusterings are compared with the metrics in
/// [`crate::quality`], not by id equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignments: Vec<usize>,
    cluster_count: usize,
}

impl Clustering {
    /// Builds a clustering from an assignment vector.  Cluster ids are
    /// re-labelled densely in order of first appearance.
    pub fn from_assignments(raw: &[usize]) -> Self {
        let mut relabel: BTreeMap<usize, usize> = BTreeMap::new();
        let mut assignments = Vec::with_capacity(raw.len());
        for &label in raw {
            let next = relabel.len();
            let dense = *relabel.entry(label).or_insert(next);
            assignments.push(dense);
        }
        Clustering {
            assignments,
            cluster_count: relabel.len(),
        }
    }

    /// Builds a clustering from explicit item groups.
    ///
    /// # Panics
    /// Panics if the groups do not form a partition of `0..n` (an item is
    /// missing or listed twice).
    pub fn from_groups(groups: &[Vec<usize>], n: usize) -> Self {
        let mut assignments = vec![usize::MAX; n];
        for (cluster, members) in groups.iter().enumerate() {
            for &item in members {
                assert!(item < n, "item {item} out of range for {n} items");
                assert_eq!(
                    assignments[item],
                    usize::MAX,
                    "item {item} assigned to more than one cluster"
                );
                assignments[item] = cluster;
            }
        }
        assert!(
            assignments.iter().all(|&a| a != usize::MAX),
            "every item must belong to exactly one cluster"
        );
        Clustering::from_assignments(&assignments)
    }

    /// The trivial clustering that puts every item in its own cluster.
    pub fn singletons(n: usize) -> Self {
        Clustering::from_assignments(&(0..n).collect::<Vec<_>>())
    }

    /// The trivial clustering that puts every item in one cluster.
    pub fn single_cluster(n: usize) -> Self {
        Clustering::from_assignments(&vec![0; n])
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when the clustering covers no items.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// The cluster id of one item.
    pub fn cluster_of(&self, item: usize) -> usize {
        self.assignments[item]
    }

    /// The dense assignment vector.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// The clusters as lists of item indices, ordered by cluster id.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.cluster_count];
        for (item, &cluster) in self.assignments.iter().enumerate() {
            groups[cluster].push(item);
        }
        groups
    }

    /// True when the two items share a cluster.
    pub fn same_cluster(&self, a: usize, b: usize) -> bool {
        self.assignments[a] == self.assignments[b]
    }

    /// The size of the largest cluster (0 for an empty clustering).
    pub fn largest_cluster_size(&self) -> usize {
        self.groups().iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignments_relabels_densely() {
        let c = Clustering::from_assignments(&[7, 7, 3, 9, 3]);
        assert_eq!(c.assignments(), &[0, 0, 1, 2, 1]);
        assert_eq!(c.cluster_count(), 3);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn from_groups_round_trips_through_groups() {
        let groups = vec![vec![0, 2], vec![1, 3, 4]];
        let c = Clustering::from_groups(&groups, 5);
        assert_eq!(c.groups(), groups);
        assert!(c.same_cluster(0, 2));
        assert!(!c.same_cluster(0, 1));
    }

    #[test]
    #[should_panic(expected = "more than one cluster")]
    fn from_groups_rejects_overlapping_groups() {
        let _ = Clustering::from_groups(&[vec![0, 1], vec![1, 2]], 3);
    }

    #[test]
    #[should_panic(expected = "exactly one cluster")]
    fn from_groups_rejects_missing_items() {
        let _ = Clustering::from_groups(&[vec![0], vec![2]], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_groups_rejects_out_of_range_items() {
        let _ = Clustering::from_groups(&[vec![0, 5]], 3);
    }

    #[test]
    fn trivial_clusterings() {
        let singles = Clustering::singletons(4);
        assert_eq!(singles.cluster_count(), 4);
        assert_eq!(singles.largest_cluster_size(), 1);
        let one = Clustering::single_cluster(4);
        assert_eq!(one.cluster_count(), 1);
        assert_eq!(one.largest_cluster_size(), 4);
        assert!(Clustering::singletons(0).is_empty());
        assert_eq!(Clustering::singletons(0).largest_cluster_size(), 0);
    }
}
