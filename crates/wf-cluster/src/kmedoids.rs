//! K-medoids partitioning (PAM-style).
//!
//! Unlike k-means, k-medoids only needs pairwise dissimilarities — exactly
//! what a workflow similarity measure provides — and its cluster centres are
//! actual workflows (the *medoids*), which makes clusters easy to present to
//! a repository user ("this group of workflows is represented by workflow
//! X").  Initialization is deterministic (farthest-point seeding from the
//! item with the highest total similarity), followed by alternating
//! assignment and medoid-update steps until convergence.

use crate::clustering::Clustering;
use crate::matrix::PairwiseSimilarities;

/// The result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoidsResult {
    /// The clustering (cluster ids are positions in [`KMedoidsResult::medoids`]).
    pub clustering: Clustering,
    /// The medoid item index of every cluster.
    pub medoids: Vec<usize>,
    /// The total within-cluster dissimilarity (sum of 1 − similarity to the
    /// assigned medoid) — lower is better.
    pub cost: f64,
    /// Number of assignment/update rounds until convergence.
    pub iterations: usize,
}

/// Runs k-medoids clustering for `k` clusters.
///
/// `k` is clamped to the number of items; `k = 0` yields an empty
/// clustering over zero clusters if there are no items, otherwise it is
/// treated as 1.  The algorithm is deterministic.
pub fn kmedoids(matrix: &PairwiseSimilarities, k: usize, max_iterations: usize) -> KMedoidsResult {
    let n = matrix.len();
    if n == 0 {
        return KMedoidsResult {
            clustering: Clustering::from_assignments(&[]),
            medoids: Vec::new(),
            cost: 0.0,
            iterations: 0,
        };
    }
    let k = k.clamp(1, n);

    // Deterministic farthest-point initialization: start from the item with
    // the highest total similarity (the most "central" workflow), then
    // repeatedly add the item least similar to the already chosen medoids.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .max_by(|&a, &b| {
            total_similarity(matrix, a)
                .partial_cmp(&total_similarity(matrix, b))
                .expect("similarities are finite")
                .then_with(|| b.cmp(&a))
        })
        .expect("n > 0");
    medoids.push(first);
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .min_by(|&a, &b| {
                let sa = medoids
                    .iter()
                    .map(|&m| matrix.similarity(a, m))
                    .fold(f64::NEG_INFINITY, f64::max);
                let sb = medoids
                    .iter()
                    .map(|&m| matrix.similarity(b, m))
                    .fold(f64::NEG_INFINITY, f64::max);
                sa.partial_cmp(&sb)
                    .expect("similarities are finite")
                    .then_with(|| a.cmp(&b))
            })
            .expect("fewer medoids than items");
        medoids.push(next);
    }

    let mut assignments = assign(matrix, &medoids);
    let mut iterations = 0usize;
    while iterations < max_iterations {
        iterations += 1;
        // Update step: for each cluster pick the member minimizing the total
        // dissimilarity to the other members.
        let mut new_medoids = medoids.clone();
        for (cluster, medoid) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == cluster).collect();
            if members.is_empty() {
                continue;
            }
            *medoid = *members
                .iter()
                .min_by(|&&a, &&b| {
                    let ca: f64 = members.iter().map(|&m| matrix.distance(a, m)).sum();
                    let cb: f64 = members.iter().map(|&m| matrix.distance(b, m)).sum();
                    ca.partial_cmp(&cb)
                        .expect("distances are finite")
                        .then_with(|| a.cmp(&b))
                })
                .expect("cluster has members");
        }
        let new_assignments = assign(matrix, &new_medoids);
        if new_medoids == medoids && new_assignments == assignments {
            break;
        }
        medoids = new_medoids;
        assignments = new_assignments;
    }

    // Re-derive the medoid list aligned with the dense cluster ids of the
    // final clustering (empty clusters, if any, disappear here).
    let clustering = Clustering::from_assignments(&assignments);
    let medoids: Vec<usize> = clustering
        .groups()
        .iter()
        .map(|members| {
            *members
                .iter()
                .min_by(|&&a, &&b| {
                    let ca: f64 = members.iter().map(|&m| matrix.distance(a, m)).sum();
                    let cb: f64 = members.iter().map(|&m| matrix.distance(b, m)).sum();
                    ca.partial_cmp(&cb)
                        .expect("distances are finite")
                        .then_with(|| a.cmp(&b))
                })
                .expect("groups are never empty")
        })
        .collect();
    let cost = (0..n)
        .map(|i| matrix.distance(i, medoids[clustering.cluster_of(i)]))
        .sum();
    KMedoidsResult {
        clustering,
        medoids,
        cost,
        iterations,
    }
}

fn total_similarity(matrix: &PairwiseSimilarities, item: usize) -> f64 {
    (0..matrix.len()).map(|j| matrix.similarity(item, j)).sum()
}

fn assign(matrix: &PairwiseSimilarities, medoids: &[usize]) -> Vec<usize> {
    (0..matrix.len())
        .map(|i| {
            medoids
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    matrix
                        .similarity(i, a)
                        .partial_cmp(&matrix.similarity(i, b))
                        .expect("similarities are finite")
                })
                .map(|(cluster, _)| cluster)
                .expect("at least one medoid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::WorkflowId;

    fn block_matrix() -> PairwiseSimilarities {
        let ids: Vec<WorkflowId> = (0..6).map(|i| WorkflowId::new(format!("w{i}"))).collect();
        // Two tight blocks: {0,1,2} and {3,4,5}.
        let mut s = vec![0.1; 36];
        for i in 0..6 {
            s[i * 6 + i] = 1.0;
        }
        for &(i, j, v) in &[
            (0usize, 1usize, 0.9),
            (0, 2, 0.85),
            (1, 2, 0.88),
            (3, 4, 0.92),
            (3, 5, 0.8),
            (4, 5, 0.86),
        ] {
            s[i * 6 + j] = v;
            s[j * 6 + i] = v;
        }
        PairwiseSimilarities::from_values(ids, s)
    }

    #[test]
    fn two_blocks_are_recovered_with_k2() {
        let matrix = block_matrix();
        let result = kmedoids(&matrix, 2, 20);
        assert_eq!(result.clustering.cluster_count(), 2);
        assert!(result.clustering.same_cluster(0, 1));
        assert!(result.clustering.same_cluster(0, 2));
        assert!(result.clustering.same_cluster(3, 4));
        assert!(!result.clustering.same_cluster(0, 3));
        assert_eq!(result.medoids.len(), 2);
        // Medoids belong to their own clusters.
        for (cluster, &medoid) in result.medoids.iter().enumerate() {
            assert_eq!(result.clustering.cluster_of(medoid), cluster);
        }
    }

    #[test]
    fn cost_decreases_with_more_clusters() {
        let matrix = block_matrix();
        let k1 = kmedoids(&matrix, 1, 20);
        let k2 = kmedoids(&matrix, 2, 20);
        let k6 = kmedoids(&matrix, 6, 20);
        assert!(k2.cost <= k1.cost);
        assert!(k6.cost <= k2.cost);
        assert!(
            k6.cost.abs() < 1e-12,
            "k = n puts every item on its own medoid"
        );
    }

    #[test]
    fn k_is_clamped_to_the_item_count() {
        let matrix = block_matrix();
        let result = kmedoids(&matrix, 100, 20);
        assert_eq!(result.clustering.cluster_count(), 6);
        let result = kmedoids(&matrix, 0, 20);
        assert_eq!(result.clustering.cluster_count(), 1);
    }

    #[test]
    fn empty_matrix_yields_an_empty_result() {
        let empty = PairwiseSimilarities::from_values(vec![], vec![]);
        let result = kmedoids(&empty, 3, 10);
        assert!(result.clustering.is_empty());
        assert!(result.medoids.is_empty());
        assert_eq!(result.cost, 0.0);
    }

    #[test]
    fn algorithm_is_deterministic() {
        let matrix = block_matrix();
        let a = kmedoids(&matrix, 2, 20);
        let b = kmedoids(&matrix, 2, 20);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.medoids, b.medoids);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn converges_within_the_iteration_budget() {
        let matrix = block_matrix();
        let result = kmedoids(&matrix, 2, 50);
        assert!(result.iterations < 50, "terminates well before the budget");
    }
}
