//! Per-pair cost of the extended Table-1 measures (label vectors, MCS, WL
//! graph kernel, frequent module / tag sets) next to the framework's Module
//! Sets measure, plus the one-off cost of the repository-level frequent
//! itemset mining the frequent-set measures depend on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_model::Workflow;
use wf_repo::{mine_repository, ItemSource, MiningConfig, Repository};
use wf_sim::{
    FrequentSetSimilarity, LabelVectorSimilarity, McsSimilarity, SimilarityConfig,
    WlKernelSimilarity, WorkflowSimilarity,
};

fn corpus() -> Vec<Workflow> {
    let (workflows, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(60, 7));
    workflows
}

fn bench_per_pair(c: &mut Criterion) {
    let workflows = corpus();
    let repo = Repository::from_workflows(workflows.clone());
    let a = &workflows[0];
    let b = &workflows[1];
    let ms = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let lv = LabelVectorSimilarity::new();
    let mcs = McsSimilarity::default();
    let wl = WlKernelSimilarity::label_based();
    let fms = FrequentSetSimilarity::frequent_module_sets(&repo);

    let mut group = c.benchmark_group("extended_per_pair");
    group.bench_function("MS_ip_te_pll", |bencher| {
        bencher.iter(|| ms.similarity(black_box(a), black_box(b)))
    });
    group.bench_function("LV", |bencher| {
        bencher.iter(|| lv.similarity(black_box(a), black_box(b)))
    });
    group.bench_function("MCS_pll", |bencher| {
        bencher.iter(|| mcs.similarity(black_box(a), black_box(b)))
    });
    group.bench_function("WL_label", |bencher| {
        bencher.iter(|| wl.similarity(black_box(a), black_box(b)))
    });
    group.bench_function("FMS", |bencher| {
        bencher.iter(|| fms.similarity(black_box(a), black_box(b)))
    });
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let repo = Repository::from_workflows(corpus());
    let mut group = c.benchmark_group("frequent_itemset_mining");
    group.sample_size(10);
    group.bench_function("module_labels_60wf", |bencher| {
        bencher.iter(|| {
            mine_repository(
                black_box(&repo),
                ItemSource::ModuleLabels,
                &MiningConfig::default(),
            )
        })
    });
    group.bench_function("tags_60wf", |bencher| {
        bencher
            .iter(|| mine_repository(black_box(&repo), ItemSource::Tags, &MiningConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_per_pair, bench_mining);
criterion_main!(benches);
