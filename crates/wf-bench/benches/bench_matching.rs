//! Micro-benchmarks for the module mapping algorithms: greedy vs
//! maximum-weight (Hungarian) vs maximum-weight non-crossing matching.
//! This is the ablation behind Fig. 7 (mapping strategy) on the runtime
//! side: greedy is cheaper, the paper found it equally good in quality.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wf_matching::{
    greedy_mapping, maximum_weight_mapping, maximum_weight_noncrossing_mapping, SimilarityMatrix,
};

fn random_matrix(n: usize, m: usize, seed: u64) -> SimilarityMatrix {
    // Small deterministic LCG; no need for the rand crate here.
    let mut state = seed;
    SimilarityMatrix::from_fn(n, m, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    })
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("module_mapping");
    for &size in &[5usize, 11, 25] {
        let matrix = random_matrix(size, size, 0xfeed + size as u64);
        group.bench_with_input(BenchmarkId::new("greedy", size), &matrix, |b, m| {
            b.iter(|| greedy_mapping(black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("maximum_weight", size), &matrix, |b, m| {
            b.iter(|| maximum_weight_mapping(black_box(m)))
        });
        group.bench_with_input(BenchmarkId::new("noncrossing", size), &matrix, |b, m| {
            b.iter(|| maximum_weight_noncrossing_mapping(black_box(m)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
