//! Per-pair cost of the five workflow similarity measures (the runtime side
//! of Fig. 5): MS, PS, GE (beam-backed), BW and BT on a typical pair of
//! corpus workflows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_ged::GedBudget;
use wf_model::Workflow;
use wf_sim::{SimilarityConfig, WorkflowSimilarity};

fn workflow_pair() -> (Workflow, Workflow) {
    let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(10, 7));
    // The first two workflows of a family: a seed and one of its variants.
    (corpus[0].clone(), corpus[1].clone())
}

fn bench_measures(c: &mut Criterion) {
    let (a, b) = workflow_pair();
    let mut group = c.benchmark_group("per_pair_similarity");
    let measures = vec![
        WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        WorkflowSimilarity::new(SimilarityConfig::best_module_sets()),
        WorkflowSimilarity::new(SimilarityConfig::path_sets_default()),
        WorkflowSimilarity::new(SimilarityConfig::best_path_sets()),
        WorkflowSimilarity::new(
            SimilarityConfig::graph_edit_default().with_ged_budget(GedBudget::small()),
        ),
        WorkflowSimilarity::new(SimilarityConfig::bag_of_words()),
        WorkflowSimilarity::new(SimilarityConfig::bag_of_tags()),
    ];
    for measure in measures {
        group.bench_function(measure.name(), |bencher| {
            bencher.iter(|| measure.similarity(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
