//! The runtime side of the Importance Projection claim (Section 5.1.4): the
//! projection itself, and the per-pair comparison cost with and without it
//! (the paper reports "a significant increase in computational performance
//! of all structural algorithms").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_repo::{importance_projection, ImportanceConfig, ImportanceScorer};
use wf_sim::{Preprocessing, SimilarityConfig, WorkflowSimilarity};

fn bench_projection(c: &mut Criterion) {
    let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(20, 5));
    let scorer = ImportanceScorer::new(ImportanceConfig::type_based());
    c.bench_function("importance_projection/per_workflow", |b| {
        b.iter(|| {
            for wf in &corpus {
                black_box(importance_projection(black_box(wf), &scorer));
            }
        })
    });

    let a = corpus[0].clone();
    let b_wf = corpus[1].clone();
    let np = WorkflowSimilarity::new(SimilarityConfig::path_sets_default());
    let ip = WorkflowSimilarity::new(
        SimilarityConfig::path_sets_default()
            .with_preprocessing(Preprocessing::ImportanceProjection),
    );
    let mut group = c.benchmark_group("path_sets_with_and_without_ip");
    group.bench_function("PS_np", |bencher| {
        bencher.iter(|| np.similarity(black_box(&a), black_box(&b_wf)))
    });
    group.bench_function("PS_ip", |bencher| {
        bencher.iter(|| ip.similarity(black_box(&a), black_box(&b_wf)))
    });
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
