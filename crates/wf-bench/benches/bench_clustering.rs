//! Cost of the clustering pipeline: building the pairwise similarity matrix
//! (sequentially and in parallel) and running the three clustering
//! algorithms on it.  The matrix construction is the O(n²) part and is what
//! the paper's complexity remarks about module-set vs substructure
//! comparison translate into at repository scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wf_cluster::{
    hierarchical_clustering, kmedoids, threshold_clustering, Linkage, PairwiseSimilarities,
};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_model::Workflow;
use wf_sim::{LabelVectorSimilarity, SimilarityConfig, WorkflowSimilarity};

fn corpus(size: usize) -> Vec<Workflow> {
    let (workflows, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(size, 7));
    workflows
}

fn bench_matrix_construction(c: &mut Criterion) {
    let workflows = corpus(40);
    let ms = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let profiled = wf_sim::ProfiledMeasure::new(SimilarityConfig::best_module_sets(), &workflows);
    let mut group = c.benchmark_group("similarity_matrix");
    group.sample_size(10);
    group.bench_function("sequential_MS_40", |bencher| {
        bencher.iter(|| PairwiseSimilarities::compute(black_box(&workflows), &ms))
    });
    for threads in [2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_MS_40", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| {
                    PairwiseSimilarities::compute_parallel(black_box(&workflows), &ms, threads)
                })
            },
        );
    }
    group.bench_function("sequential_profiled_MS_40", |bencher| {
        bencher.iter(|| PairwiseSimilarities::compute(black_box(&workflows), &profiled))
    });
    group.bench_function("parallel_profiled_MS_40_4_threads", |bencher| {
        bencher.iter(|| PairwiseSimilarities::compute_parallel(black_box(&workflows), &profiled, 4))
    });
    group.finish();
}

fn bench_clustering_algorithms(c: &mut Criterion) {
    let workflows = corpus(60);
    let matrix = PairwiseSimilarities::compute(&workflows, &LabelVectorSimilarity::new());
    let mut group = c.benchmark_group("clustering_algorithms");
    group.bench_function("hierarchical_average_60", |bencher| {
        bencher.iter(|| hierarchical_clustering(black_box(&matrix), Linkage::Average))
    });
    group.bench_function("threshold_0.8_60", |bencher| {
        bencher.iter(|| threshold_clustering(black_box(&matrix), 0.8))
    });
    group.bench_function("kmedoids_k8_60", |bencher| {
        bencher.iter(|| kmedoids(black_box(&matrix), 8, 30))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matrix_construction,
    bench_clustering_algorithms
);
criterion_main!(benches);
