//! Top-k retrieval over a repository (the operation behind Figures 10/11):
//! the seed scan paths (sequential and parallel) against the
//! corpus-resident engine (profiled scoring + inverted-index pruning) with
//! the best Module Sets configuration on a 200-workflow corpus.
//!
//! `wfsim_search --demo --bench-json BENCH_retrieval.json` records the
//! same comparison machine-readably for the perf trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_repo::{IndexedSearchEngine, Repository, SearchEngine};
use wf_sim::{ProfiledMeasure, SimilarityConfig, WorkflowSimilarity};

fn bench_retrieval(c: &mut Criterion) {
    let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(200, 9));
    let repository = Repository::from_workflows(corpus);
    let query_index = 0usize;
    let query = repository.workflows()[query_index].clone();
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let engine = SearchEngine::new(
        &repository,
        |a: &wf_model::Workflow, b: &wf_model::Workflow| measure.similarity(a, b),
    )
    .with_threads(8);
    let profiled =
        ProfiledMeasure::new(SimilarityConfig::best_module_sets(), repository.workflows());
    let indexed = IndexedSearchEngine::new(&profiled).with_threads(8);
    assert_eq!(engine.top_k(&query, 10), indexed.top_k(query_index, 10));

    let mut group = c.benchmark_group("top10_retrieval_200_workflows");
    group.sample_size(10);
    group.bench_function("scan_sequential", |b| {
        b.iter(|| engine.top_k(black_box(&query), 10))
    });
    group.bench_function("scan_parallel_8_threads", |b| {
        b.iter(|| engine.top_k_parallel(black_box(&query), 10))
    });
    group.bench_function("indexed_profiled", |b| {
        b.iter(|| indexed.top_k(black_box(query_index), 10))
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
