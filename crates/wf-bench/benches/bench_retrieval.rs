//! Top-k retrieval over a repository (the operation behind Figures 10/11):
//! sequential vs parallel scoring with the best Module Sets configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_repo::{Repository, SearchEngine};
use wf_sim::{SimilarityConfig, WorkflowSimilarity};

fn bench_retrieval(c: &mut Criterion) {
    let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(150, 9));
    let repository = Repository::from_workflows(corpus);
    let query = repository.iter().next().expect("non-empty corpus").clone();
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let engine = SearchEngine::new(
        &repository,
        |a: &wf_model::Workflow, b: &wf_model::Workflow| measure.similarity(a, b),
    )
    .with_threads(8);

    let mut group = c.benchmark_group("top10_retrieval_150_workflows");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| engine.top_k(black_box(&query), 10))
    });
    group.bench_function("parallel_8_threads", |b| {
        b.iter(|| engine.top_k_parallel(black_box(&query), 10))
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
