//! BioConsert consensus ranking over 15 expert rankings of 10 candidates —
//! the aggregation step of the gold-standard construction (Section 4.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_gold::{
    bioconsert_consensus, generalized_kendall_distance, BioConsertConfig, KendallConfig, Ranking,
};

fn expert_rankings() -> Vec<Ranking> {
    // 15 noisy permutations of 10 items with occasional omissions, generated
    // deterministically without the rand crate.
    let items: Vec<String> = (0..10).map(|i| format!("wf{i}")).collect();
    let mut rankings = Vec::new();
    let mut state = 0xabcdefu64;
    let mut next = |n: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % n
    };
    for expert in 0..15 {
        let mut order = items.clone();
        // A few random swaps relative to the canonical order.
        for _ in 0..(expert % 5) + 1 {
            let i = next(order.len());
            let j = next(order.len());
            order.swap(i, j);
        }
        // Occasionally drop an item (an "unsure" rating).
        if expert % 4 == 0 {
            let victim = next(order.len());
            order.remove(victim);
        }
        rankings.push(Ranking::from_buckets(order.into_iter().map(|i| vec![i])));
    }
    rankings
}

fn bench_bioconsert(c: &mut Criterion) {
    let rankings = expert_rankings();
    c.bench_function("bioconsert_consensus/15_experts_10_items", |b| {
        b.iter(|| bioconsert_consensus(black_box(&rankings), &BioConsertConfig::default()))
    });
    c.bench_function("generalized_kendall_distance/10_items", |b| {
        b.iter(|| {
            generalized_kendall_distance(
                black_box(&rankings[0]),
                black_box(&rankings[1]),
                &KendallConfig::default(),
            )
        })
    });
}

criterion_group!(benches, bench_bioconsert);
criterion_main!(benches);
