//! Graph edit distance: exact A* vs beam-search approximation on workflow
//! sized graphs — the trade-off behind the paper's per-pair time budget
//! (Section 5.1.1/5.1.4: 23 of 240 pairs were not computable in 5 minutes
//! without Importance Projection).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wf_ged::{astar_ged, beam_ged, GedBudget, GedCosts, LabeledGraph};

/// A chain graph pair sharing `shared` node labels.
fn chain_pair(n: usize, shared: usize) -> (LabeledGraph, LabeledGraph) {
    let labels_a: Vec<u32> = (0..n as u32).collect();
    let labels_b: Vec<u32> = (0..n as u32)
        .map(|i| if (i as usize) < shared { i } else { i + 100 })
        .collect();
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    (
        LabeledGraph::new(labels_a, edges.clone()),
        LabeledGraph::new(labels_b, edges),
    )
}

fn bench_ged(c: &mut Criterion) {
    let costs = GedCosts::uniform();
    let mut group = c.benchmark_group("graph_edit_distance");
    group.sample_size(10);
    for &n in &[5usize, 8, 11] {
        let (a, b) = chain_pair(n, n / 2);
        group.bench_with_input(BenchmarkId::new("astar_exact", n), &n, |bencher, _| {
            let budget = GedBudget {
                max_expansions: 2_000_000,
                time_limit: None,
                ..GedBudget::default()
            };
            bencher.iter(|| astar_ged(black_box(&a), black_box(&b), &costs, &budget))
        });
        group.bench_with_input(BenchmarkId::new("beam_32", n), &n, |bencher, _| {
            bencher.iter(|| beam_ged(black_box(&a), black_box(&b), &costs, 32))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ged);
criterion_main!(benches);
