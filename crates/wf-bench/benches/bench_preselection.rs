//! The runtime side of the `te` preselection claim (Section 5.1.4): the
//! pairwise module comparison step with all pairs vs strict type matching vs
//! type-equivalence classes.  The paper reports a 2.3× reduction in pairs;
//! this bench shows the corresponding reduction in comparison time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_model::Workflow;
use wf_repo::PreselectionStrategy;
use wf_sim::{module_similarity_matrix, ModuleComparisonScheme};

fn pairs() -> Vec<(Workflow, Workflow)> {
    let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(20, 3));
    (0..10)
        .map(|i| (corpus[i].clone(), corpus[i + 10].clone()))
        .collect()
}

fn bench_preselection(c: &mut Criterion) {
    let pairs = pairs();
    let scheme = ModuleComparisonScheme::pw0();
    let mut group = c.benchmark_group("module_pair_comparison");
    for (name, strategy) in [
        ("ta_all_pairs", PreselectionStrategy::AllPairs),
        ("tt_strict_type", PreselectionStrategy::StrictType),
        ("te_type_equivalence", PreselectionStrategy::TypeEquivalence),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for (x, y) in &pairs {
                    let (_, compared) =
                        module_similarity_matrix(black_box(x), black_box(y), &scheme, strategy);
                    total += compared;
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preselection);
criterion_main!(benches);
