//! Micro-benchmarks for the text substrate: Levenshtein similarity on module
//! labels and the Bag-of-Words tokenization pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_text::levenshtein::levenshtein_similarity;
use wf_text::tokenize::tokenize_filtered;
use wf_text::TokenBag;

fn bench_levenshtein(c: &mut Criterion) {
    let pairs = [
        ("get_pathway_by_gene", "get_pathways_by_genes"),
        ("run_ncbi_blast", "run_wu_blast"),
        ("fetch_fasta_sequence", "fetchFastaSequence"),
        ("normalise_expression_matrix", "plot_heatmap"),
    ];
    c.bench_function("levenshtein_similarity/module_labels", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (x, y) in &pairs {
                acc += levenshtein_similarity(black_box(x), black_box(y));
            }
            acc
        })
    });
}

fn bench_tokenize(c: &mut Criterion) {
    let description = "This workflow retrieves a KEGG pathway for a given Entrez gene id, \
                       extracts the gene identifiers contained in the pathway and maps them \
                       onto UniProt accessions using the BioMart service before rendering a \
                       coloured pathway diagram.";
    c.bench_function("tokenize_filtered/description", |b| {
        b.iter(|| tokenize_filtered(black_box(description)))
    });
    c.bench_function("token_bag/set_similarity", |b| {
        let bag_a = TokenBag::from_text(description);
        let bag_b =
            TokenBag::from_text("Maps Entrez genes onto KEGG pathways and colours the diagram");
        b.iter(|| bag_a.set_similarity(black_box(&bag_b)))
    });
}

criterion_group!(benches, bench_levenshtein, bench_tokenize);
criterion_main!(benches);
