//! Scan vs. corpus-resident top-k retrieval on a 200-workflow corpus.
//!
//! Three engines answer the same top-10 query:
//!
//! * `scan_seed` — the seed path: [`SearchEngine::top_k`] over a
//!   [`WorkflowSimilarity`] that re-projects and re-derives text per pair;
//! * `scan_profiled` — exhaustive scan, but scoring from precomputed
//!   [`ProfiledMeasure`] profiles;
//! * `indexed` / `indexed_parallel` — the inverted-index engine with
//!   upper-bound pruning on top of the profiles.
//!
//! All three return bit-identical hit lists (asserted once up front).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_repo::{scan_top_k, IndexedSearchEngine, Repository, SearchEngine};
use wf_sim::{ProfiledMeasure, SimilarityConfig, WorkflowSimilarity};

fn bench_search_indexed(c: &mut Criterion) {
    let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(200, 9));
    let repository = Repository::from_workflows(corpus);
    let query_index = 0usize;
    let query = repository.workflows()[query_index].clone();

    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let scan_engine = SearchEngine::new(
        &repository,
        |a: &wf_model::Workflow, b: &wf_model::Workflow| measure.similarity(a, b),
    );
    let profiled =
        ProfiledMeasure::new(SimilarityConfig::best_module_sets(), repository.workflows());
    let indexed = IndexedSearchEngine::new(&profiled).with_threads(8);

    // The engines must agree before their speed is worth comparing.
    let expected = scan_engine.top_k(&query, 10);
    assert_eq!(indexed.top_k(query_index, 10), expected);
    assert_eq!(scan_top_k(&profiled, query_index, 10), expected);

    let mut group = c.benchmark_group("top10_retrieval_200_workflows");
    group.sample_size(10);
    group.bench_function("scan_seed", |b| {
        b.iter(|| scan_engine.top_k(black_box(&query), 10))
    });
    group.bench_function("scan_profiled", |b| {
        b.iter(|| scan_top_k(&profiled, black_box(query_index), 10))
    });
    group.bench_function("indexed", |b| {
        b.iter(|| indexed.top_k(black_box(query_index), 10))
    });
    group.bench_function("indexed_parallel", |b| {
        b.iter(|| indexed.top_k_parallel(black_box(query_index), 10))
    });
    group.finish();
}

criterion_group!(benches, bench_search_indexed);
criterion_main!(benches);
