//! Shared corpus construction for the experiment binaries.
//!
//! Before the corpus layer, every `wf-bench` binary carried its own copy of
//! the demo-corpus recipe (`generate_taverna_corpus(&TavernaCorpusConfig::
//! small(size, seed))`) and of the file-or-`--demo` loader.  This module is
//! the single implementation: binaries ask for raw workflows (when they
//! need the latent [`CorpusMeta`] ground truth) or for a fully built
//! [`Corpus`] (when they score), and both CLIs share one loader.

use wf_corpus::{generate_taverna_corpus, CorpusMeta, TavernaCorpusConfig};
use wf_model::{json, Workflow};
use wf_sim::{Corpus, SimilarityConfig};

/// The seed every demo corpus uses unless a binary overrides it — keeps the
/// `--demo` output of all CLIs and examples comparable run to run.
pub const DEMO_SEED: u64 = 7;

/// The `--demo` / `corpus.json` source argument shared by the CLIs.
pub const DEMO_SOURCE: &str = "--demo";

/// A freshly generated myExperiment-like demo corpus of `size` workflows.
pub fn demo_workflows(size: usize, seed: u64) -> Vec<Workflow> {
    demo_workflows_with_meta(size, seed).0
}

/// [`demo_workflows`] plus the latent family/topic ground truth, for
/// experiments that evaluate against it.
pub fn demo_workflows_with_meta(size: usize, seed: u64) -> (Vec<Workflow>, CorpusMeta) {
    generate_taverna_corpus(&TavernaCorpusConfig::small(size, seed))
}

/// Loads raw workflows from a JSON corpus file, or generates a demo corpus
/// of `demo_size` workflows when `source` is `--demo`.
pub fn load_workflows(source: &str, demo_size: usize) -> Result<Vec<Workflow>, String> {
    if source == DEMO_SOURCE {
        return Ok(demo_workflows(demo_size, DEMO_SEED));
    }
    let text = std::fs::read_to_string(source)
        .map_err(|e| format!("cannot read corpus file '{source}': {e}"))?;
    json::corpus_from_json(&text).map_err(|e| format!("cannot parse corpus '{source}': {e}"))
}

/// [`load_workflows`] followed by one shared [`Corpus::build`] — the
/// standard way for a binary to obtain its scoring substrate.
pub fn load_corpus(
    source: &str,
    demo_size: usize,
    config: SimilarityConfig,
) -> Result<Corpus, String> {
    Ok(Corpus::build(config, load_workflows(source, demo_size)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_corpus_is_deterministic_per_seed() {
        let a = demo_workflows(12, DEMO_SEED);
        let b = demo_workflows(12, DEMO_SEED);
        assert_eq!(a.len(), 12);
        let ids = |wfs: &[Workflow]| wfs.iter().map(|w| w.id.clone()).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        let (c, meta) = demo_workflows_with_meta(12, 99);
        assert_eq!(c.len(), 12);
        assert!(meta.get(&c[0].id).is_some(), "ground truth covers corpus");
    }

    #[test]
    fn loader_builds_a_ready_corpus_from_the_demo_source() {
        let corpus = load_corpus(DEMO_SOURCE, 10, SimilarityConfig::best_module_sets()).unwrap();
        assert_eq!(corpus.len(), 10);
        assert!(corpus.token_index().token_count() > 0);
        assert!(load_corpus(
            "/nonexistent.json",
            10,
            SimilarityConfig::best_module_sets()
        )
        .is_err());
    }
}
