//! The workflow *ranking* experiment (paper Section 4.2, experiment 1, and
//! Section 5.1).
//!
//! A set of query workflows is selected from the corpus; each query comes
//! with a stratified list of 10 candidate workflows.  The simulated expert
//! panel rates every (query, candidate) pair; per-expert rankings are
//! aggregated into a BioConsert consensus.  A similarity algorithm is then
//! evaluated by ranking the same candidates and comparing its ranking to the
//! consensus with the ranking-correctness / completeness measures.

use std::collections::BTreeMap;

use wf_corpus::{
    generate_taverna_corpus, select_candidates, select_queries, CorpusMeta, ExpertPanel,
    ExpertPanelConfig, TavernaCorpusConfig,
};
use wf_gold::metrics::QualitySummary;
use wf_gold::{
    bioconsert_consensus, ranking_correctness_completeness, BioConsertConfig, Ranking, RatingCorpus,
};
use wf_model::{Workflow, WorkflowId};
use wf_repo::Repository;

use crate::NamedAlgorithm;

/// Configuration of the ranking experiment.
#[derive(Debug, Clone)]
pub struct RankingExperimentConfig {
    /// Size of the generated Taverna-like corpus.
    pub corpus_size: usize,
    /// Number of query workflows (the paper uses 24).
    pub queries: usize,
    /// Number of candidates per query (the paper uses 10).
    pub candidates_per_query: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for RankingExperimentConfig {
    fn default() -> Self {
        RankingExperimentConfig {
            corpus_size: 1483,
            queries: 24,
            candidates_per_query: 10,
            seed: 42,
        }
    }
}

impl RankingExperimentConfig {
    /// A reduced setting for unit tests and quick runs.
    pub fn quick() -> Self {
        RankingExperimentConfig {
            corpus_size: 120,
            queries: 6,
            candidates_per_query: 8,
            seed: 42,
        }
    }
}

/// The per-algorithm outcome of the ranking experiment.
#[derive(Debug, Clone)]
pub struct AlgorithmScore {
    /// Algorithm name.
    pub name: String,
    /// Aggregated ranking quality over all rankable queries.
    pub summary: QualitySummary,
    /// Number of queries the algorithm could not rank at all (e.g. Bag of
    /// Tags on an untagged query workflow).
    pub unrankable_queries: usize,
}

/// The fully prepared ranking experiment: corpus, queries, candidates,
/// expert ratings and consensus rankings.
pub struct RankingExperiment {
    repository: Repository,
    meta: CorpusMeta,
    queries: Vec<WorkflowId>,
    candidates: BTreeMap<WorkflowId, Vec<WorkflowId>>,
    ratings: RatingCorpus,
    consensus: BTreeMap<WorkflowId, Ranking>,
}

impl RankingExperiment {
    /// Generates the Taverna-like corpus, selects queries/candidates,
    /// simulates the expert study and computes the consensus rankings.
    pub fn prepare(config: &RankingExperimentConfig) -> Self {
        let (corpus, meta) =
            generate_taverna_corpus(&TavernaCorpusConfig::small(config.corpus_size, config.seed));
        Self::prepare_from_corpus(corpus, meta, config)
    }

    /// Builds the experiment from an existing corpus (used by the Galaxy
    /// transferability experiment of Fig. 12, which supplies the Galaxy
    /// corpus instead of the default Taverna one).
    pub fn prepare_from_corpus(
        corpus: Vec<Workflow>,
        meta: CorpusMeta,
        config: &RankingExperimentConfig,
    ) -> Self {
        let repository = Repository::from_workflows(corpus);
        let queries = select_queries(&meta, config.queries, 3, config.seed + 1);

        let mut candidates = BTreeMap::new();
        let mut pairs = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let list = select_candidates(
                &meta,
                q,
                config.candidates_per_query,
                config.seed + 100 + i as u64,
            );
            for c in &list {
                pairs.push((q.clone(), c.clone()));
            }
            candidates.insert(q.clone(), list);
        }

        let panel = ExpertPanel::new(ExpertPanelConfig {
            seed: config.seed + 1000,
            ..ExpertPanelConfig::default()
        });
        let ratings = panel.rate_pairs(&meta, &pairs);

        let mut consensus = BTreeMap::new();
        for q in &queries {
            let expert_rankings: Vec<Ranking> = ratings
                .expert_rankings(q.as_str())
                .into_iter()
                .map(|(_, r)| r)
                .collect();
            consensus.insert(
                q.clone(),
                bioconsert_consensus(&expert_rankings, &BioConsertConfig::default()),
            );
        }

        RankingExperiment {
            repository,
            meta,
            queries,
            candidates,
            ratings,
            consensus,
        }
    }

    /// The underlying repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The latent corpus metadata.
    pub fn meta(&self) -> &CorpusMeta {
        &self.meta
    }

    /// The selected query workflow ids.
    pub fn queries(&self) -> &[WorkflowId] {
        &self.queries
    }

    /// The candidate list of a query.
    pub fn candidates(&self, query: &WorkflowId) -> &[WorkflowId] {
        self.candidates.get(query).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The collected expert ratings.
    pub fn ratings(&self) -> &RatingCorpus {
        &self.ratings
    }

    /// The BioConsert consensus ranking of a query's candidates.
    pub fn consensus(&self, query: &WorkflowId) -> Option<&Ranking> {
        self.consensus.get(query)
    }

    /// Total number of (query, candidate) pairs in the experiment (the
    /// paper's "240 pairs").
    pub fn pair_count(&self) -> usize {
        self.candidates.values().map(Vec::len).sum()
    }

    /// Ranks one query's candidates with a scoring function; candidates the
    /// function abstains on are left unranked (as the paper does for BT).
    pub fn algorithm_ranking(
        &self,
        query: &WorkflowId,
        score: &(dyn Fn(&Workflow, &Workflow) -> Option<f64> + Sync),
    ) -> Ranking {
        let Some(query_wf) = self.repository.get(query) else {
            return Ranking::new();
        };
        let mut scored: Vec<(String, f64)> = Vec::new();
        for candidate in self.candidates(query) {
            let Some(candidate_wf) = self.repository.get(candidate) else {
                continue;
            };
            if let Some(s) = score(query_wf, candidate_wf) {
                scored.push((candidate.as_str().to_string(), s));
            }
        }
        Ranking::from_scores(scored, 1e-9)
    }

    /// Evaluates one algorithm over all queries.
    pub fn evaluate(&self, algorithm: &NamedAlgorithm<'_>) -> AlgorithmScore {
        let mut qualities = Vec::new();
        let mut unrankable = 0usize;
        for q in &self.queries {
            let algorithmic = self.algorithm_ranking(q, &algorithm.score);
            if algorithmic.is_empty() {
                unrankable += 1;
                continue;
            }
            let consensus = self.consensus(q).expect("consensus exists for every query");
            qualities.push(ranking_correctness_completeness(&algorithmic, consensus));
        }
        let summary = QualitySummary::of(&qualities).unwrap_or(QualitySummary {
            queries: 0,
            mean_correctness: 0.0,
            stddev_correctness: 0.0,
            mean_completeness: 0.0,
        });
        AlgorithmScore {
            name: algorithm.name.clone(),
            summary,
            unrankable_queries: unrankable,
        }
    }

    /// Evaluates several algorithms.
    pub fn evaluate_all(&self, algorithms: &[NamedAlgorithm<'_>]) -> Vec<AlgorithmScore> {
        algorithms.iter().map(|a| self.evaluate(a)).collect()
    }

    /// Per-query ranking correctness of one algorithm, in query order.
    ///
    /// Queries the algorithm cannot rank at all contribute a correctness of
    /// 0 (no correlation), so the vectors of different algorithms stay
    /// aligned — the form needed by the paired significance tests that back
    /// the paper's "p < 0.05, paired ttest" statements.
    pub fn per_query_correctness(&self, algorithm: &NamedAlgorithm<'_>) -> Vec<f64> {
        self.queries
            .iter()
            .map(|q| {
                let algorithmic = self.algorithm_ranking(q, &algorithm.score);
                if algorithmic.is_empty() {
                    return 0.0;
                }
                let consensus = self.consensus(q).expect("consensus exists for every query");
                ranking_correctness_completeness(&algorithmic, consensus).correctness
            })
            .collect()
    }

    /// Per-expert agreement with the consensus (Fig. 4): the ranking quality
    /// of each individual expert's ranking measured against the BioConsert
    /// consensus, averaged over the queries the expert rated.
    pub fn expert_agreement(&self) -> Vec<(String, QualitySummary)> {
        let experts: Vec<String> = self
            .ratings
            .experts()
            .into_iter()
            .map(str::to_string)
            .collect();
        experts
            .into_iter()
            .map(|expert| {
                let mut qualities = Vec::new();
                for q in &self.queries {
                    let expert_ranking = self.ratings.expert_ranking(&expert, q.as_str());
                    if expert_ranking.is_empty() {
                        continue;
                    }
                    let consensus = self.consensus(q).expect("consensus exists");
                    qualities.push(ranking_correctness_completeness(&expert_ranking, consensus));
                }
                let summary = QualitySummary::of(&qualities).unwrap_or(QualitySummary {
                    queries: 0,
                    mean_correctness: 0.0,
                    stddev_correctness: 0.0,
                    mean_completeness: 0.0,
                });
                (expert, summary)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_sim::{SimilarityConfig, WorkflowSimilarity};

    fn experiment() -> RankingExperiment {
        RankingExperiment::prepare(&RankingExperimentConfig::quick())
    }

    #[test]
    fn preparation_builds_a_complete_experiment() {
        let exp = experiment();
        assert_eq!(exp.queries().len(), 6);
        assert_eq!(exp.pair_count(), 6 * 8);
        assert_eq!(exp.repository().len(), 120);
        assert!(!exp.ratings().is_empty());
        for q in exp.queries() {
            assert_eq!(exp.candidates(q).len(), 8);
            let consensus = exp.consensus(q).unwrap();
            assert!(
                !consensus.is_empty(),
                "consensus ranks the candidates of {q}"
            );
        }
    }

    #[test]
    fn good_algorithms_beat_the_inverted_oracle() {
        let exp = experiment();
        // Latent-similarity oracle: the best possible algorithm.
        let meta = exp.meta().clone();
        let oracle = NamedAlgorithm::from_fn("oracle", move |a, b| meta.latent(&a.id, &b.id));
        let meta2 = exp.meta().clone();
        let inverted = NamedAlgorithm::from_fn("inverted", move |a, b| {
            meta2.latent(&a.id, &b.id).map(|s| -s)
        });
        let oracle_score = exp.evaluate(&oracle);
        let inverted_score = exp.evaluate(&inverted);
        assert!(oracle_score.summary.mean_correctness > 0.6);
        assert!(inverted_score.summary.mean_correctness < -0.3);
        assert!(oracle_score.summary.mean_correctness > inverted_score.summary.mean_correctness);
    }

    #[test]
    fn real_measures_correlate_with_the_consensus() {
        let exp = experiment();
        let ms = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ));
        let score = exp.evaluate(&ms);
        assert!(
            score.summary.mean_correctness > 0.2,
            "MS_ip_te_pll correctness {} should clearly exceed chance",
            score.summary.mean_correctness
        );
        assert!(score.summary.mean_completeness > 0.5);
    }

    #[test]
    fn expert_agreement_is_high_on_average() {
        let exp = experiment();
        let agreement = exp.expert_agreement();
        assert_eq!(agreement.len(), 15);
        let mean: f64 = agreement
            .iter()
            .map(|(_, s)| s.mean_correctness)
            .sum::<f64>()
            / agreement.len() as f64;
        assert!(
            mean > 0.5,
            "experts should mostly agree with their consensus (got {mean})"
        );
    }

    #[test]
    fn evaluate_all_preserves_order_and_names() {
        let exp = experiment();
        let algorithms = vec![
            NamedAlgorithm::from_measure(WorkflowSimilarity::new(SimilarityConfig::bag_of_words())),
            NamedAlgorithm::from_measure(WorkflowSimilarity::new(SimilarityConfig::bag_of_tags())),
        ];
        let scores = exp.evaluate_all(&algorithms);
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].name, "BW");
        assert_eq!(scores[1].name, "BT");
    }
}
