//! Figure 9: best standalone configurations and ensembles.
//!
//! Part (a): for each structural measure, the configuration sweep over
//! module scheme × preselection × preprocessing is evaluated and the best
//! configuration is reported next to the annotation baselines (BW, BT) and
//! the pw0/np/ta baselines of Fig. 5.
//! Part (b): ensembles of two algorithms (score averaging).  The paper's
//! best ensembles combine BW with MS or PS in their ip/te/pll
//! configurations and beat every standalone algorithm.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 300), `WFSIM_QUERIES` (default
//! 16), `WFSIM_SEED` (default 42).  The sweep evaluates 48 structural
//! configurations, so this binary is the slowest of the figure
//! reproductions.

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_ged::GedBudget;
use wf_sim::{Ensemble, MeasureKind, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 300),
        queries: env_param("WFSIM_QUERIES", 16),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 9: best configurations (a) and ensembles of two (b)");
    println!(
        "setup: {} workflows, {} queries x {} candidates",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);

    // --- Part (a): configuration sweep -----------------------------------
    // Best configuration per measure: (name, correctness, completeness, combined).
    type BestRow = Option<(String, f64, f64, f64)>;
    let mut best: Vec<(MeasureKind, BestRow)> = vec![
        (MeasureKind::ModuleSets, None),
        (MeasureKind::PathSets, None),
        (MeasureKind::GraphEdit, None),
    ];
    for sweep_config in SimilarityConfig::structural_sweep() {
        let measure_kind = sweep_config.measure;
        let algorithm = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            sweep_config.with_ged_budget(GedBudget::small()),
        ));
        let score = experiment.evaluate(&algorithm);
        let entry = best
            .iter_mut()
            .find(|(kind, _)| *kind == measure_kind)
            .expect("all structural kinds listed");
        let candidate = (
            score.name.clone(),
            score.summary.mean_correctness,
            score.summary.stddev_correctness,
            score.summary.mean_completeness,
        );
        match &entry.1 {
            Some((_, current, _, _)) if *current >= candidate.1 => {}
            _ => entry.1 = Some(candidate),
        }
    }

    let mut part_a = TextTable::new(vec![
        "algorithm",
        "mean correctness",
        "stddev",
        "mean completeness",
    ]);
    // Baselines for reference (the shaded bars of the figure).
    for baseline in [
        SimilarityConfig::module_sets_default(),
        SimilarityConfig::path_sets_default(),
        SimilarityConfig::graph_edit_default().with_ged_budget(GedBudget::small()),
        SimilarityConfig::bag_of_words(),
        SimilarityConfig::bag_of_tags(),
    ] {
        let algorithm = NamedAlgorithm::from_measure(WorkflowSimilarity::new(baseline));
        let score = experiment.evaluate(&algorithm);
        part_a.row(vec![
            format!("{} (baseline)", score.name),
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
        ]);
    }
    for (_, entry) in &best {
        let (name, correctness, stddev, completeness) =
            entry.as_ref().expect("sweep covered every measure");
        part_a.row(vec![
            format!("{name} (best of sweep)"),
            fmt3(*correctness),
            fmt3(*stddev),
            fmt3(*completeness),
        ]);
    }
    println!("(a) best standalone configuration per structural measure vs baselines");
    println!("{}", part_a.render());
    println!("paper shape: tuned MS/PS overtake BW; GE stays behind even when tuned");
    println!();

    // --- Part (b): ensembles of two ---------------------------------------
    let mut part_b = TextTable::new(vec![
        "ensemble",
        "mean correctness",
        "stddev",
        "mean completeness",
    ]);
    let ensembles = vec![
        Ensemble::bw_plus_module_sets(),
        Ensemble::bw_plus_path_sets(),
        Ensemble::from_configs(vec![
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::bag_of_tags(),
        ]),
        Ensemble::from_configs(vec![
            SimilarityConfig::best_module_sets(),
            SimilarityConfig::best_path_sets(),
        ]),
    ];
    for ensemble in ensembles {
        let algorithm = NamedAlgorithm::from_ensemble(ensemble);
        let score = experiment.evaluate(&algorithm);
        part_b.row(vec![
            score.name,
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
        ]);
    }
    println!("(b) ensembles of two algorithms (score averaging)");
    println!("{}", part_b.render());
    println!("paper shape: BW+MS_ip_te_pll and BW+PS_ip_te_pll beat every standalone algorithm, with smaller stddev");
}
