//! `wfsim_serve` — the serving benchmark: scatter-gather batch-query
//! throughput vs shard count, query latency quantiles under live churn,
//! and end-to-end throughput over real loopback sockets through the
//! `wf-serve` network front end.
//!
//! Usage:
//! ```text
//! wfsim_serve [corpus.json | --demo] [--bench-json BENCH_serving.json]
//!             [--smoke | --quick] [--demo-size N] [--queries N] [--k N]
//!             [--threads N] [--shards a,b,c] [--churn-ops N] [--clients N]
//! ```
//!
//! * Builds the demo corpus (250 workflows by default, 60 with
//!   `--smoke`/`--quick`) once, answers a query batch through the
//!   single-corpus indexed engine as the baseline, then through
//!   `ShardedCorpus::search_batch` for each shard count, verifying every
//!   hit list is bit-identical to the baseline.
//! * Then wraps the largest shard count in a `CorpusService` and measures
//!   per-query latency quantiles (p50/p95/p99) while a churn thread
//!   removes and re-adds workflows through the per-shard write locks.
//! * Finally starts a `wf-serve` TCP server on loopback and drives it with
//!   `--clients` concurrent retrying clients (default 32) — most querying,
//!   a few churning over the wire — reporting client-observed quantiles
//!   and saturation queries/s for the `network_serving` report section.
//! * `--bench-json PATH` writes the machine-readable report CI uploads
//!   next to the retrieval and clustering benches.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wf_bench::table::TextTable;
use wf_model::{Workflow, WorkflowId};
use wf_serve::{Client, ClientConfig, LatencyHistogram, Server, ServerConfig, StatsSnapshot};
use wf_sim::{Corpus, CorpusService, ShardedCorpus, SimilarityConfig};

struct Options {
    source: String,
    demo_size: usize,
    queries: usize,
    k: usize,
    threads: usize,
    shard_counts: Vec<usize>,
    churn_ops: usize,
    clients: usize,
    bench_json: Option<String>,
    smoke: bool,
}

const USAGE: &str = "usage: wfsim_serve [corpus.json | --demo] [--bench-json PATH] \
                     [--smoke | --quick] [--demo-size N] [--queries N] [--k N] \
                     [--threads N] [--shards a,b,c] [--churn-ops N] [--clients N]";

fn flag_value(args: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} expects a value"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut source = "--demo".to_string();
    let mut demo_size = 0usize;
    let mut queries = 0usize;
    let mut k = 10usize;
    let mut threads = 8usize;
    let mut shard_counts = vec![1, 2, 4, 8];
    let mut churn_ops = 0usize;
    let mut clients = 32usize;
    let mut bench_json = None;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => source = "--demo".to_string(),
            "--smoke" | "--quick" => smoke = true,
            "--bench-json" => bench_json = Some(flag_value(args, &mut i, "--bench-json")?),
            "--demo-size" => {
                demo_size = flag_value(args, &mut i, "--demo-size")?
                    .parse()
                    .map_err(|_| "invalid --demo-size value".to_string())?
            }
            "--queries" => {
                queries = flag_value(args, &mut i, "--queries")?
                    .parse()
                    .map_err(|_| "invalid --queries value".to_string())?
            }
            "--k" => {
                k = flag_value(args, &mut i, "--k")?
                    .parse()
                    .map_err(|_| "invalid --k value".to_string())?
            }
            "--threads" => {
                threads = flag_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads value".to_string())?
            }
            "--churn-ops" => {
                churn_ops = flag_value(args, &mut i, "--churn-ops")?
                    .parse()
                    .map_err(|_| "invalid --churn-ops value".to_string())?
            }
            "--clients" => {
                clients = flag_value(args, &mut i, "--clients")?
                    .parse()
                    .map_err(|_| "invalid --clients value".to_string())?
            }
            "--shards" => {
                shard_counts = flag_value(args, &mut i, "--shards")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("invalid shard count '{s}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if shard_counts.is_empty() {
                    return Err("--shards needs at least one count".to_string());
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            other => source = other.to_string(),
        }
        i += 1;
    }
    if demo_size == 0 {
        demo_size = if smoke { 60 } else { 250 };
    }
    if queries == 0 {
        queries = if smoke { 12 } else { 48 };
    }
    if churn_ops == 0 {
        churn_ops = if smoke { 20 } else { 80 };
    }
    Ok(Options {
        source,
        demo_size,
        queries,
        k,
        threads: threads.max(1),
        shard_counts,
        churn_ops,
        clients: clients.max(2),
        bench_json,
        smoke,
    })
}

struct ShardRun {
    shards: usize,
    build_ms: f64,
    batch_ms: f64,
    queries_per_s: f64,
    identical: bool,
    scored: usize,
    pruned: usize,
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args)?;
    let config = SimilarityConfig::best_module_sets();
    let workflows = wf_bench::load_workflows(&options.source, options.demo_size)?;
    let n = workflows.len();
    if n < 2 {
        return Err("serving benchmark needs at least two workflows".to_string());
    }

    // Baseline: one shared single corpus, indexed engine, sequential batch.
    let single = Corpus::build(config.clone(), workflows.clone());
    let engine = single.search_engine();
    let query_ids: Vec<WorkflowId> = single
        .ids()
        .iter()
        .step_by((n / options.queries.min(n)).max(1))
        .take(options.queries)
        .cloned()
        .collect();
    let query_indices: Vec<usize> = query_ids
        .iter()
        .map(|id| single.index_of(id).expect("query resident"))
        .collect();
    let baseline_started = Instant::now();
    let baseline: Vec<Vec<wf_repo::SearchHit>> = query_indices
        .iter()
        .map(|&qi| engine.top_k(qi, options.k))
        .collect();
    let baseline_ms = baseline_started.elapsed().as_secs_f64() * 1e3;

    // Scatter-gather throughput per shard count.
    let mut runs: Vec<ShardRun> = Vec::new();
    for &shards in &options.shard_counts {
        let build_started = Instant::now();
        let sharded = ShardedCorpus::build(config.clone(), shards, workflows.clone());
        let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
        let batch_started = Instant::now();
        let batch = sharded.search_batch(&query_ids, options.k, options.threads);
        let batch_ms = batch_started.elapsed().as_secs_f64() * 1e3;
        let identical = batch
            .iter()
            .zip(&baseline)
            .all(|(got, expected)| got.as_deref() == Some(expected.as_slice()));
        let mut scored = 0usize;
        let mut pruned = 0usize;
        for id in &query_ids {
            let (_, stats) = sharded.search_with_stats(id, options.k).expect("resident");
            scored += stats.scored;
            pruned += stats.pruned + stats.zero_bound;
        }
        runs.push(ShardRun {
            shards,
            build_ms,
            batch_ms,
            queries_per_s: query_ids.len() as f64 / (batch_ms / 1e3).max(1e-9),
            identical,
            scored,
            pruned,
        });
    }

    // Churn-while-query: the largest shard count behind RwLocks, one churn
    // thread cycling removals and re-additions while query workers run.
    let max_shards = options.shard_counts.iter().copied().max().unwrap_or(1);
    let service = Arc::new(
        CorpusService::new(ShardedCorpus::build(
            config.clone(),
            max_shards,
            workflows.clone(),
        ))
        .with_threads(options.threads),
    );
    let churn_pool: Vec<WorkflowId> = workflows
        .iter()
        .map(|w| w.id.clone())
        .filter(|id| !query_ids.contains(id))
        .collect();
    // The query side answers a fixed number of individually-timed queries
    // (so the phase can report true per-query p50/p95/p99, not per-batch
    // walls); the churn thread keeps removing and re-adding workflows
    // (through the per-shard write locks) and stops the moment the query
    // workers finish, so every counted churn op genuinely overlapped the
    // counted queries (`--churn-ops` only paces how many queries run).
    let total_churn_queries = options.churn_ops.div_ceil(10).max(3) * query_ids.len();
    let churn_latency = LatencyHistogram::new();
    let queries_done = AtomicBool::new(false);
    let query_cursor = AtomicUsize::new(0);
    let churn_started = Instant::now();
    let (queries_under_churn, churn_ops_done) = std::thread::scope(|scope| {
        let service = &service;
        let queries_done = &queries_done;
        let query_cursor = &query_cursor;
        let churn_latency = &churn_latency;
        let query_ids = &query_ids;
        let churner = scope.spawn(|| {
            let mut done = 0usize;
            for id in churn_pool.iter().cycle() {
                // ordering: Acquire — pairs with the Release store below
                // so the churner's final op count happens-after every
                // counted query; Relaxed could let the loop observe the
                // flag late and overshoot the measured window.
                if queries_done.load(Ordering::Acquire) {
                    break;
                }
                // Remove and re-add so the corpus size stays stable.
                if let Some(wf) = service.remove(id) {
                    done += 1;
                    service.add(wf);
                    done += 1;
                }
            }
            done
        });
        let workers: Vec<_> = (0..options.threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut served = 0usize;
                    loop {
                        // ordering: Relaxed — the cursor is a work ticket
                        // dispenser; fetch_add is already atomic and no
                        // other memory is published through it.
                        let i = query_cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total_churn_queries {
                            break;
                        }
                        let id = &query_ids[i % query_ids.len()];
                        let started = Instant::now();
                        if service.search(id, options.k).is_some() {
                            churn_latency.record(started.elapsed());
                            served += 1;
                        }
                    }
                    served
                })
            })
            .collect();
        let served: usize = workers
            .into_iter()
            .map(|w| w.join().expect("query worker panicked"))
            .sum();
        // ordering: Release — publishes "all counted queries issued" to
        // the churner's Acquire load above, closing the measured window.
        queries_done.store(true, Ordering::Release);
        (served, churner.join().expect("churn thread panicked"))
    });
    let churn_ms = churn_started.elapsed().as_secs_f64() * 1e3;
    let churn_qps = queries_under_churn as f64 / (churn_ms / 1e3).max(1e-9);
    let churn_lat = churn_latency.snapshot();

    // Network serving: the same service behind the wf-serve TCP front end,
    // hammered by concurrent retrying clients over real loopback sockets.
    // Most clients query; every eighth churns over the wire, so the
    // measured quantiles include add/remove write-lock interference plus
    // framing, syscalls and client retries.
    let server = Server::start(
        Arc::clone(&service),
        ServerConfig {
            workers: options.threads,
            ..ServerConfig::default()
        },
        None,
    )
    .map_err(|e| format!("cannot start loopback server: {e}"))?;
    let addr = server.addr();
    let workflow_by_id: std::collections::BTreeMap<WorkflowId, Workflow> = workflows
        .iter()
        .map(|w| (w.id.clone(), w.clone()))
        .collect();
    let net_queries_per_client = if options.smoke { 6 } else { 40 };
    let net_started = Instant::now();
    let (net_ok, net_degraded, net_errors, net_churn_ops, net_retries, net_latency) =
        std::thread::scope(|scope| {
            let query_ids = &query_ids;
            let churn_pool = &churn_pool;
            let workflow_by_id = &workflow_by_id;
            let net_latency = Arc::new(LatencyHistogram::new());
            let handles: Vec<_> = (0..options.clients)
                .map(|c| {
                    let latency = Arc::clone(&net_latency);
                    scope.spawn(move || {
                        let mut client = Client::new(
                            addr,
                            ClientConfig {
                                seed: 0xC0FFEE + c as u64,
                                ..ClientConfig::default()
                            },
                        );
                        let (mut ok, mut degraded, mut errors, mut churned) =
                            (0u64, 0u64, 0u64, 0u64);
                        if c % 8 == 7 && !churn_pool.is_empty() {
                            // Wire churner: remove and re-add its slice of
                            // the pool through the framed protocol.
                            for step in 0..net_queries_per_client {
                                let id =
                                    &churn_pool[(c + step * options.clients) % churn_pool.len()];
                                let wf = &workflow_by_id[id];
                                match (client.remove(id.as_str()), client.add(wf)) {
                                    (Ok(true), Ok(_)) => churned += 2,
                                    (Ok(false), Ok(_)) => churned += 1,
                                    _ => errors += 1,
                                }
                            }
                        } else {
                            for step in 0..net_queries_per_client {
                                let id = &query_ids[(c + step * options.clients) % query_ids.len()];
                                let started = Instant::now();
                                match client.search(id.as_str(), options.k as u32, 0) {
                                    Ok(outcome) => {
                                        latency.record(started.elapsed());
                                        ok += 1;
                                        if outcome.degraded {
                                            degraded += 1;
                                        }
                                    }
                                    Err(_) => errors += 1,
                                }
                            }
                        }
                        (ok, degraded, errors, churned, client.retries())
                    })
                })
                .collect();
            let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
            for handle in handles {
                let (ok, degraded, errors, churned, retries) =
                    handle.join().expect("network client panicked");
                totals.0 += ok;
                totals.1 += degraded;
                totals.2 += errors;
                totals.3 += churned;
                totals.4 += retries;
            }
            let lat = net_latency.snapshot();
            (totals.0, totals.1, totals.2, totals.3, totals.4, lat)
        });
    let net_ms = net_started.elapsed().as_secs_f64() * 1e3;
    let net_qps = net_ok as f64 / (net_ms / 1e3).max(1e-9);
    let server_stats: StatsSnapshot = server.metrics();
    server.shutdown();

    // Human-readable summary.
    println!(
        "serving benchmark ({}, {} workflows, {} queries, top-{}, {} threads):",
        single.measure_name(),
        n,
        query_ids.len(),
        options.k,
        options.threads
    );
    println!("  single-corpus baseline: {baseline_ms:>8.1} ms");
    let mut table = TextTable::new(vec![
        "shards",
        "build ms",
        "batch ms",
        "queries/s",
        "identical",
        "scored",
        "pruned",
    ]);
    for run in &runs {
        table.row(vec![
            run.shards.to_string(),
            format!("{:.1}", run.build_ms),
            format!("{:.1}", run.batch_ms),
            format!("{:.0}", run.queries_per_s),
            run.identical.to_string(),
            run.scored.to_string(),
            run.pruned.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "  churn: {churn_ops_done} ops on {max_shards} shards in {churn_ms:.1} ms, \
         {queries_under_churn} queries answered concurrently ({churn_qps:.0} queries/s, \
         p50 {} us, p95 {} us, p99 {} us)",
        churn_lat.quantile_us(0.50),
        churn_lat.quantile_us(0.95),
        churn_lat.quantile_us(0.99),
    );
    println!(
        "  network: {} clients on {addr} — {net_ok} queries ok ({net_degraded} degraded, \
         {net_errors} errors, {net_churn_ops} wire churn ops, {net_retries} retries) in \
         {net_ms:.1} ms = {net_qps:.0} queries/s; client p50 {} us, p95 {} us, p99 {} us; \
         server shed {} of {} requests",
        options.clients,
        net_latency.quantile_us(0.50),
        net_latency.quantile_us(0.95),
        net_latency.quantile_us(0.99),
        server_stats.shed,
        server_stats.requests,
    );

    if let Some(path) = &options.bench_json {
        let shard_reports: Vec<String> = runs
            .iter()
            .map(|run| {
                format!(
                    "    {{\"shards\": {}, \"build_ms\": {:.3}, \"batch_wall_ms\": {:.3}, \
                     \"queries_per_s\": {:.1}, \"identical_hits\": {}, \
                     \"comparisons_scored\": {}, \"comparisons_pruned\": {}}}",
                    run.shards,
                    run.build_ms,
                    run.batch_ms,
                    run.queries_per_s,
                    run.identical,
                    run.scored,
                    run.pruned,
                )
            })
            .collect();
        let report = format!(
            "{{\n  \"experiment\": \"serving_scatter_gather\",\n  \"corpus\": \"{}\",\n  \
             \"corpus_size\": {},\n  \"queries\": {},\n  \"k\": {},\n  \
             \"algorithm\": \"{}\",\n  \"threads\": {},\n  \"smoke\": {},\n  \
             \"single_engine_wall_ms\": {:.3},\n  \"shard_counts\": [\n{}\n  ],\n  \
             \"churn\": {{\"shards\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
             \"queries_completed\": {}, \"queries_per_s\": {:.1}, \"final_size\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}},\n  \
             \"network_serving\": {{\"clients\": {}, \"queries_per_client\": {}, \
             \"queries_ok\": {}, \"degraded\": {}, \"errors\": {}, \
             \"wire_churn_ops\": {}, \"client_retries\": {}, \"wall_ms\": {:.3}, \
             \"queries_per_s\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"server\": {{\"requests\": {}, \"responses_ok\": {}, \"shed\": {}, \
             \"degraded\": {}, \"bad_frames\": {}, \"search_p50_us\": {}, \
             \"search_p95_us\": {}, \"search_p99_us\": {}}}}}\n}}\n",
            wf_bench::json_escape(&options.source),
            n,
            query_ids.len(),
            options.k,
            single.measure_name(),
            options.threads,
            options.smoke,
            baseline_ms,
            shard_reports.join(",\n"),
            max_shards,
            churn_ops_done,
            churn_ms,
            queries_under_churn,
            churn_qps,
            service.len(),
            churn_lat.quantile_us(0.50),
            churn_lat.quantile_us(0.95),
            churn_lat.quantile_us(0.99),
            options.clients,
            net_queries_per_client,
            net_ok,
            net_degraded,
            net_errors,
            net_churn_ops,
            net_retries,
            net_ms,
            net_qps,
            net_latency.quantile_us(0.50),
            net_latency.quantile_us(0.95),
            net_latency.quantile_us(0.99),
            server_stats.requests,
            server_stats.responses_ok,
            server_stats.shed,
            server_stats.degraded,
            server_stats.bad_frames,
            server_stats.search_p50_us,
            server_stats.search_p95_us,
            server_stats.search_p99_us,
        );
        std::fs::write(path, &report).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("  report -> {path}");
    }

    if let Some(diverged) = runs.iter().find(|run| !run.identical) {
        return Err(format!(
            "sharded batch hits diverged from the single-corpus engine at {} shards — this is a bug",
            diverged.shards
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
