//! `wfsim_serve` — the serving benchmark: scatter-gather batch-query
//! throughput vs shard count, plus query throughput under live churn.
//!
//! Usage:
//! ```text
//! wfsim_serve [corpus.json | --demo] [--bench-json BENCH_serving.json]
//!             [--smoke | --quick] [--demo-size N] [--queries N] [--k N]
//!             [--threads N] [--shards a,b,c] [--churn-ops N]
//! ```
//!
//! * Builds the demo corpus (250 workflows by default, 60 with
//!   `--smoke`/`--quick`) once, answers a query batch through the
//!   single-corpus indexed engine as the baseline, then through
//!   `ShardedCorpus::search_batch` for each shard count, verifying every
//!   hit list is bit-identical to the baseline.
//! * Then wraps the largest shard count in a `CorpusService` and measures
//!   batch-query throughput while a churn thread removes and re-adds
//!   workflows through the per-shard write locks.
//! * `--bench-json PATH` writes the machine-readable report CI uploads
//!   next to the retrieval and clustering benches.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use wf_bench::table::TextTable;
use wf_model::WorkflowId;
use wf_sim::{Corpus, CorpusService, ShardedCorpus, SimilarityConfig};

struct Options {
    source: String,
    demo_size: usize,
    queries: usize,
    k: usize,
    threads: usize,
    shard_counts: Vec<usize>,
    churn_ops: usize,
    bench_json: Option<String>,
    smoke: bool,
}

const USAGE: &str = "usage: wfsim_serve [corpus.json | --demo] [--bench-json PATH] \
                     [--smoke | --quick] [--demo-size N] [--queries N] [--k N] \
                     [--threads N] [--shards a,b,c] [--churn-ops N]";

fn flag_value(args: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} expects a value"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut source = "--demo".to_string();
    let mut demo_size = 0usize;
    let mut queries = 0usize;
    let mut k = 10usize;
    let mut threads = 8usize;
    let mut shard_counts = vec![1, 2, 4, 8];
    let mut churn_ops = 0usize;
    let mut bench_json = None;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => source = "--demo".to_string(),
            "--smoke" | "--quick" => smoke = true,
            "--bench-json" => bench_json = Some(flag_value(args, &mut i, "--bench-json")?),
            "--demo-size" => {
                demo_size = flag_value(args, &mut i, "--demo-size")?
                    .parse()
                    .map_err(|_| "invalid --demo-size value".to_string())?
            }
            "--queries" => {
                queries = flag_value(args, &mut i, "--queries")?
                    .parse()
                    .map_err(|_| "invalid --queries value".to_string())?
            }
            "--k" => {
                k = flag_value(args, &mut i, "--k")?
                    .parse()
                    .map_err(|_| "invalid --k value".to_string())?
            }
            "--threads" => {
                threads = flag_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads value".to_string())?
            }
            "--churn-ops" => {
                churn_ops = flag_value(args, &mut i, "--churn-ops")?
                    .parse()
                    .map_err(|_| "invalid --churn-ops value".to_string())?
            }
            "--shards" => {
                shard_counts = flag_value(args, &mut i, "--shards")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("invalid shard count '{s}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if shard_counts.is_empty() {
                    return Err("--shards needs at least one count".to_string());
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            other => source = other.to_string(),
        }
        i += 1;
    }
    if demo_size == 0 {
        demo_size = if smoke { 60 } else { 250 };
    }
    if queries == 0 {
        queries = if smoke { 12 } else { 48 };
    }
    if churn_ops == 0 {
        churn_ops = if smoke { 20 } else { 80 };
    }
    Ok(Options {
        source,
        demo_size,
        queries,
        k,
        threads: threads.max(1),
        shard_counts,
        churn_ops,
        bench_json,
        smoke,
    })
}

struct ShardRun {
    shards: usize,
    build_ms: f64,
    batch_ms: f64,
    queries_per_s: f64,
    identical: bool,
    scored: usize,
    pruned: usize,
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args)?;
    let config = SimilarityConfig::best_module_sets();
    let workflows = wf_bench::load_workflows(&options.source, options.demo_size)?;
    let n = workflows.len();
    if n < 2 {
        return Err("serving benchmark needs at least two workflows".to_string());
    }

    // Baseline: one shared single corpus, indexed engine, sequential batch.
    let single = Corpus::build(config.clone(), workflows.clone());
    let engine = single.search_engine();
    let query_ids: Vec<WorkflowId> = single
        .ids()
        .iter()
        .step_by((n / options.queries.min(n)).max(1))
        .take(options.queries)
        .cloned()
        .collect();
    let query_indices: Vec<usize> = query_ids
        .iter()
        .map(|id| single.index_of(id).expect("query resident"))
        .collect();
    let baseline_started = Instant::now();
    let baseline: Vec<Vec<wf_repo::SearchHit>> = query_indices
        .iter()
        .map(|&qi| engine.top_k(qi, options.k))
        .collect();
    let baseline_ms = baseline_started.elapsed().as_secs_f64() * 1e3;

    // Scatter-gather throughput per shard count.
    let mut runs: Vec<ShardRun> = Vec::new();
    for &shards in &options.shard_counts {
        let build_started = Instant::now();
        let sharded = ShardedCorpus::build(config.clone(), shards, workflows.clone());
        let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
        let batch_started = Instant::now();
        let batch = sharded.search_batch(&query_ids, options.k, options.threads);
        let batch_ms = batch_started.elapsed().as_secs_f64() * 1e3;
        let identical = batch
            .iter()
            .zip(&baseline)
            .all(|(got, expected)| got.as_deref() == Some(expected.as_slice()));
        let mut scored = 0usize;
        let mut pruned = 0usize;
        for id in &query_ids {
            let (_, stats) = sharded.search_with_stats(id, options.k).expect("resident");
            scored += stats.scored;
            pruned += stats.pruned + stats.zero_bound;
        }
        runs.push(ShardRun {
            shards,
            build_ms,
            batch_ms,
            queries_per_s: query_ids.len() as f64 / (batch_ms / 1e3).max(1e-9),
            identical,
            scored,
            pruned,
        });
    }

    // Churn-while-query: the largest shard count behind RwLocks, one churn
    // thread cycling removals and re-additions while batches run.
    let max_shards = options.shard_counts.iter().copied().max().unwrap_or(1);
    let service = CorpusService::new(ShardedCorpus::build(
        config.clone(),
        max_shards,
        workflows.clone(),
    ))
    .with_threads(options.threads);
    let churn_pool: Vec<WorkflowId> = workflows
        .iter()
        .map(|w| w.id.clone())
        .filter(|id| !query_ids.contains(id))
        .collect();
    // The query side runs a fixed number of batches; the churn thread
    // keeps removing and re-adding workflows (through the per-shard write
    // locks) and stops the moment the batches finish, so every counted
    // churn op genuinely overlapped the counted queries (`--churn-ops`
    // only paces how many batches run).
    let batches = options.churn_ops.div_ceil(10).max(3);
    let queries_done = AtomicBool::new(false);
    let churn_started = Instant::now();
    let (queries_under_churn, churn_ops_done) = std::thread::scope(|scope| {
        let service = &service;
        let queries_done = &queries_done;
        let churner = scope.spawn(|| {
            let mut done = 0usize;
            for id in churn_pool.iter().cycle() {
                // ordering: Acquire — pairs with the Release store below
                // so the churner's final op count happens-after every
                // counted query batch; Relaxed could let the loop observe
                // the flag late and overshoot the measured window.
                if queries_done.load(Ordering::Acquire) {
                    break;
                }
                // Remove and re-add so the corpus size stays stable.
                if let Some(wf) = service.remove(id) {
                    done += 1;
                    service.add(wf);
                    done += 1;
                }
            }
            done
        });
        let mut served = 0usize;
        for _ in 0..batches {
            let batch = service.search_batch(&query_ids, options.k);
            served += batch.iter().filter(|hits| hits.is_some()).count();
        }
        // ordering: Release — publishes "all counted batches issued" to
        // the churner's Acquire load above, closing the measured window.
        queries_done.store(true, Ordering::Release);
        (served, churner.join().expect("churn thread panicked"))
    });
    let churn_ms = churn_started.elapsed().as_secs_f64() * 1e3;
    let churn_qps = queries_under_churn as f64 / (churn_ms / 1e3).max(1e-9);

    // Human-readable summary.
    println!(
        "serving benchmark ({}, {} workflows, {} queries, top-{}, {} threads):",
        single.measure_name(),
        n,
        query_ids.len(),
        options.k,
        options.threads
    );
    println!("  single-corpus baseline: {baseline_ms:>8.1} ms");
    let mut table = TextTable::new(vec![
        "shards",
        "build ms",
        "batch ms",
        "queries/s",
        "identical",
        "scored",
        "pruned",
    ]);
    for run in &runs {
        table.row(vec![
            run.shards.to_string(),
            format!("{:.1}", run.build_ms),
            format!("{:.1}", run.batch_ms),
            format!("{:.0}", run.queries_per_s),
            run.identical.to_string(),
            run.scored.to_string(),
            run.pruned.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "  churn: {churn_ops_done} ops on {max_shards} shards in {churn_ms:.1} ms, \
         {queries_under_churn} queries answered concurrently ({churn_qps:.0} queries/s)"
    );

    if let Some(path) = &options.bench_json {
        let shard_reports: Vec<String> = runs
            .iter()
            .map(|run| {
                format!(
                    "    {{\"shards\": {}, \"build_ms\": {:.3}, \"batch_wall_ms\": {:.3}, \
                     \"queries_per_s\": {:.1}, \"identical_hits\": {}, \
                     \"comparisons_scored\": {}, \"comparisons_pruned\": {}}}",
                    run.shards,
                    run.build_ms,
                    run.batch_ms,
                    run.queries_per_s,
                    run.identical,
                    run.scored,
                    run.pruned,
                )
            })
            .collect();
        let report = format!(
            "{{\n  \"experiment\": \"serving_scatter_gather\",\n  \"corpus\": \"{}\",\n  \
             \"corpus_size\": {},\n  \"queries\": {},\n  \"k\": {},\n  \
             \"algorithm\": \"{}\",\n  \"threads\": {},\n  \"smoke\": {},\n  \
             \"single_engine_wall_ms\": {:.3},\n  \"shard_counts\": [\n{}\n  ],\n  \
             \"churn\": {{\"shards\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
             \"queries_completed\": {}, \"queries_per_s\": {:.1}, \"final_size\": {}}}\n}}\n",
            wf_bench::json_escape(&options.source),
            n,
            query_ids.len(),
            options.k,
            single.measure_name(),
            options.threads,
            options.smoke,
            baseline_ms,
            shard_reports.join(",\n"),
            max_shards,
            churn_ops_done,
            churn_ms,
            queries_under_churn,
            churn_qps,
            service.len(),
        );
        std::fs::write(path, &report).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("  report -> {path}");
    }

    if let Some(diverged) = runs.iter().find(|run| !run.identical) {
        return Err(format!(
            "sharded batch hits diverged from the single-corpus engine at {} shards — this is a bug",
            diverged.shards
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
