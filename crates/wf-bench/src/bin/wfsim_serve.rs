//! `wfsim_serve` — the serving benchmark: scatter-gather batch-query
//! throughput vs shard count, query latency quantiles under live churn,
//! and end-to-end throughput over real loopback sockets through the
//! `wf-serve` network front end.
//!
//! Usage:
//! ```text
//! wfsim_serve [corpus.json | --demo] [--bench-json BENCH_serving.json]
//!             [--smoke | --quick] [--demo-size N] [--queries N] [--k N]
//!             [--threads N] [--shards a,b,c] [--churn-ops N] [--clients N]
//!             [--corpus-size 250,2k,10k] [--reps N] [--assert-scaling]
//! ```
//!
//! * Builds the demo corpus (250 workflows by default, 60 with
//!   `--smoke`/`--quick`) once, answers a query batch through the
//!   single-corpus indexed engine as the baseline, then through
//!   `ShardedCorpus::search_batch` for each shard count, verifying every
//!   hit list is bit-identical to the baseline.  `--corpus-size` repeats
//!   the whole q/s × shard-count sweep for each listed demo-corpus size
//!   (`2k` = 2000), each timed as the median of `--reps` batches (default
//!   3), producing one scaling curve per size in the JSON report.
//!   `--assert-scaling` then fails the run if, on the largest corpus,
//!   batch q/s at the highest shard count falls more than 15% below the
//!   lowest — a regression guard pinning down the global-frontier
//!   scheduling guarantee (the old per-shard-heap design lost >4× here;
//!   the allowance absorbs scheduler/allocator noise on one-core runners).
//! * Then wraps the largest shard count in a `CorpusService` and measures
//!   per-query latency quantiles (p50/p95/p99) while a churn thread
//!   removes and re-adds workflows through the per-shard write locks.
//! * Finally starts a `wf-serve` TCP server on loopback and drives it with
//!   `--clients` concurrent retrying clients (default 32) — most querying,
//!   a few churning over the wire — reporting client-observed quantiles
//!   and saturation queries/s for the `network_serving` report section.
//! * `--bench-json PATH` writes the machine-readable report CI uploads
//!   next to the retrieval and clustering benches.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wf_bench::table::TextTable;
use wf_model::{Workflow, WorkflowId};
use wf_serve::{Client, ClientConfig, LatencyHistogram, Server, ServerConfig, StatsSnapshot};
use wf_sim::{Corpus, CorpusService, SearchParallelism, ShardedCorpus, SimilarityConfig};

struct Options {
    source: String,
    demo_size: usize,
    queries: usize,
    k: usize,
    threads: usize,
    shard_counts: Vec<usize>,
    churn_ops: usize,
    clients: usize,
    bench_json: Option<String>,
    smoke: bool,
    corpus_sizes: Vec<usize>,
    reps: usize,
    assert_scaling: bool,
    assert_latency: Option<f64>,
}

const USAGE: &str = "usage: wfsim_serve [corpus.json | --demo] [--bench-json PATH] \
                     [--smoke | --quick] [--demo-size N] [--queries N] [--k N] \
                     [--threads N] [--shards a,b,c] [--churn-ops N] [--clients N] \
                     [--corpus-size 250,2k,10k] [--reps N] [--assert-scaling] \
                     [--assert-latency FACTOR]";

/// Parses a corpus size that may carry a `k`/`K` thousands suffix.
fn parse_size(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    let (digits, scale) = match trimmed.strip_suffix(['k', 'K']) {
        Some(head) => (head, 1000usize),
        None => (trimmed, 1),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(scale))
        .filter(|&n| n >= 2)
        .ok_or_else(|| format!("invalid corpus size '{raw}'"))
}

fn flag_value(args: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} expects a value"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut source = "--demo".to_string();
    let mut demo_size = 0usize;
    let mut queries = 0usize;
    let mut k = 10usize;
    let mut threads = 8usize;
    let mut shard_counts = vec![1, 2, 4, 8];
    let mut churn_ops = 0usize;
    let mut clients = 32usize;
    let mut bench_json = None;
    let mut smoke = false;
    let mut corpus_sizes = Vec::new();
    let mut reps = 3usize;
    let mut assert_scaling = false;
    let mut assert_latency = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => source = "--demo".to_string(),
            "--smoke" | "--quick" => smoke = true,
            "--bench-json" => bench_json = Some(flag_value(args, &mut i, "--bench-json")?),
            "--demo-size" => {
                demo_size = flag_value(args, &mut i, "--demo-size")?
                    .parse()
                    .map_err(|_| "invalid --demo-size value".to_string())?
            }
            "--queries" => {
                queries = flag_value(args, &mut i, "--queries")?
                    .parse()
                    .map_err(|_| "invalid --queries value".to_string())?
            }
            "--k" => {
                k = flag_value(args, &mut i, "--k")?
                    .parse()
                    .map_err(|_| "invalid --k value".to_string())?
            }
            "--threads" => {
                threads = flag_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads value".to_string())?
            }
            "--churn-ops" => {
                churn_ops = flag_value(args, &mut i, "--churn-ops")?
                    .parse()
                    .map_err(|_| "invalid --churn-ops value".to_string())?
            }
            "--clients" => {
                clients = flag_value(args, &mut i, "--clients")?
                    .parse()
                    .map_err(|_| "invalid --clients value".to_string())?
            }
            "--corpus-size" | "--corpus-sizes" => {
                corpus_sizes = flag_value(args, &mut i, "--corpus-size")?
                    .split(',')
                    .map(parse_size)
                    .collect::<Result<Vec<_>, _>>()?;
                if corpus_sizes.is_empty() {
                    return Err("--corpus-size needs at least one size".to_string());
                }
            }
            "--reps" => {
                reps = flag_value(args, &mut i, "--reps")?
                    .parse()
                    .map_err(|_| "invalid --reps value".to_string())?
            }
            "--assert-scaling" => assert_scaling = true,
            "--assert-latency" => {
                let factor: f64 = flag_value(args, &mut i, "--assert-latency")?
                    .parse()
                    .map_err(|_| "invalid --assert-latency value".to_string())?;
                if !factor.is_finite() || factor <= 0.0 {
                    return Err("--assert-latency needs a positive factor".to_string());
                }
                assert_latency = Some(factor);
            }
            "--shards" => {
                shard_counts = flag_value(args, &mut i, "--shards")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("invalid shard count '{s}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if shard_counts.is_empty() {
                    return Err("--shards needs at least one count".to_string());
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            other => source = other.to_string(),
        }
        i += 1;
    }
    if demo_size == 0 {
        demo_size = if smoke { 60 } else { 250 };
    }
    if queries == 0 {
        queries = if smoke { 12 } else { 48 };
    }
    if churn_ops == 0 {
        churn_ops = if smoke { 20 } else { 80 };
    }
    if !corpus_sizes.is_empty() && source != "--demo" {
        return Err("--corpus-size sweeps the seeded demo corpus; it cannot resize a file".into());
    }
    Ok(Options {
        source,
        demo_size,
        queries,
        k,
        threads: threads.max(1),
        shard_counts,
        churn_ops,
        clients: clients.max(2),
        bench_json,
        smoke,
        corpus_sizes,
        reps: reps.max(1),
        assert_scaling,
        assert_latency,
    })
}

struct ShardRun {
    shards: usize,
    build_ms: f64,
    batch_ms: f64,
    queries_per_s: f64,
    identical: bool,
    scored: usize,
    pruned: usize,
}

/// One corpus size's q/s × shard-count scaling curve.
struct SizeCurve {
    corpus_size: usize,
    queries: usize,
    algorithm: String,
    baseline_ms: f64,
    runs: Vec<ShardRun>,
}

/// Runs the shard-count sweep for one workflow set: a single-corpus
/// indexed-engine baseline, then `ShardedCorpus::search_batch_with_stats`
/// per shard count — batch wall time the median of `reps`, pruning stats
/// folded from the workers of the final rep, and every hit list checked
/// bit-identical against the baseline.
fn sweep_shard_counts(workflows: &[Workflow], options: &Options) -> SizeCurve {
    let config = SimilarityConfig::best_module_sets();
    let n = workflows.len();
    let single = Corpus::build(config.clone(), workflows.to_vec());
    let engine = single.search_engine();
    let query_ids: Vec<WorkflowId> = single
        .ids()
        .iter()
        .step_by((n / options.queries.min(n)).max(1))
        .take(options.queries)
        .cloned()
        .collect();
    let query_indices: Vec<usize> = query_ids
        .iter()
        .map(|id| single.index_of(id).expect("query resident"))
        .collect();
    let baseline_started = Instant::now();
    let baseline: Vec<Vec<wf_repo::SearchHit>> = query_indices
        .iter()
        .map(|&qi| engine.top_k(qi, options.k))
        .collect();
    let baseline_ms = baseline_started.elapsed().as_secs_f64() * 1e3;

    // Build every shard count up front, then time them in interleaved
    // rounds (one rep of each count per round) and take the per-count
    // median.  Timing each count's reps back-to-back instead would bias
    // the comparison: allocator and page-cache state drift over the
    // process lifetime, so whichever count runs first measures fastest —
    // an ordering artifact the round-robin spreads evenly.  The median
    // (not best-of) keeps one lucky scheduler slice from minting a ~5%
    // outlier on a curve whose truth is flat.
    let built: Vec<(usize, f64, ShardedCorpus)> = options
        .shard_counts
        .iter()
        .map(|&shards| {
            let build_started = Instant::now();
            let sharded = ShardedCorpus::build(config.clone(), shards, workflows.to_vec());
            (shards, build_started.elapsed().as_secs_f64() * 1e3, sharded)
        })
        .collect();
    let mut rep_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(options.reps); built.len()];
    let mut outcomes = Vec::new();
    for rep in 0..options.reps {
        for (slot, (_, _, sharded)) in built.iter().enumerate() {
            let batch_started = Instant::now();
            let (batch, stats) =
                sharded.search_batch_with_stats(&query_ids, options.k, options.threads);
            rep_ms[slot].push(batch_started.elapsed().as_secs_f64() * 1e3);
            if rep == 0 {
                outcomes.push((batch, stats));
            }
        }
    }
    let mut runs: Vec<ShardRun> = Vec::new();
    for (slot, (shards, build_ms, _)) in built.iter().enumerate() {
        let times = &mut rep_ms[slot];
        times.sort_by(|a, b| a.partial_cmp(b).expect("batch timings are finite"));
        let median_ms = times[times.len() / 2];
        let (batch, stats) = &outcomes[slot];
        let identical = batch
            .iter()
            .zip(&baseline)
            .all(|(got, expected)| got.as_deref() == Some(expected.as_slice()));
        runs.push(ShardRun {
            shards: *shards,
            build_ms: *build_ms,
            batch_ms: median_ms,
            queries_per_s: query_ids.len() as f64 / (median_ms / 1e3).max(1e-9),
            identical,
            scored: stats.scored,
            pruned: stats.pruned + stats.zero_bound,
        });
    }
    SizeCurve {
        corpus_size: n,
        queries: query_ids.len(),
        algorithm: single.measure_name(),
        baseline_ms,
        runs,
    }
}

/// Per-query latency at one shard count, sequential global frontier vs
/// racing per-shard workers, exact percentiles over every individually
/// timed query.
struct LatencyRun {
    shards: usize,
    workers: usize,
    seq_p50_us: u64,
    seq_p95_us: u64,
    par_p50_us: u64,
    par_p95_us: u64,
    identical: bool,
}

impl LatencyRun {
    /// Sequential-over-racing p50 ratio: > 1 means racing is faster.
    fn speedup_p50(&self) -> f64 {
        self.seq_p50_us as f64 / (self.par_p50_us as f64).max(1.0)
    }
}

/// Exact percentile over raw per-query samples (nearest-rank on the
/// sorted vector) — no histogram buckets, since the curve's whole point
/// is sub-bucket differences between the two scan strategies.
fn exact_percentile_us(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    if samples.is_empty() {
        return 0;
    }
    let idx = ((q * (samples.len() - 1) as f64).round() as usize).min(samples.len() - 1);
    samples[idx]
}

/// The per-query latency-vs-shard-count curve: every query individually
/// timed under the sequential frontier and under racing shard workers on
/// the *same* `ShardedCorpus`, interleaved query-by-query so allocator
/// and cache drift hit both strategies evenly.  Racing hits are checked
/// bit-identical to sequential on every query.
fn sweep_query_latency(workflows: &[Workflow], options: &Options) -> Vec<LatencyRun> {
    let config = SimilarityConfig::best_module_sets();
    let n = workflows.len();
    let query_ids: Vec<WorkflowId> = workflows
        .iter()
        .map(|w| w.id.clone())
        .step_by((n / options.queries.min(n)).max(1))
        .take(options.queries)
        .collect();
    options
        .shard_counts
        .iter()
        .map(|&shards| {
            let mut sharded = ShardedCorpus::build(config.clone(), shards, workflows.to_vec());
            let workers = SearchParallelism::racing_per_shard().workers_for(shards);
            let mut seq_us: Vec<u64> = Vec::with_capacity(query_ids.len() * options.reps);
            let mut par_us: Vec<u64> = Vec::with_capacity(query_ids.len() * options.reps);
            let mut identical = true;
            for _ in 0..options.reps {
                for id in &query_ids {
                    sharded.set_parallelism(SearchParallelism::Sequential);
                    let started = Instant::now();
                    let seq_hits = sharded.search(id, options.k).expect("query resident");
                    seq_us.push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    sharded.set_parallelism(SearchParallelism::racing_per_shard());
                    let started = Instant::now();
                    let par_hits = sharded.search(id, options.k).expect("query resident");
                    par_us.push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    identical &= seq_hits == par_hits;
                }
            }
            LatencyRun {
                shards,
                workers,
                seq_p50_us: exact_percentile_us(&mut seq_us, 0.50),
                seq_p95_us: exact_percentile_us(&mut seq_us, 0.95),
                par_p50_us: exact_percentile_us(&mut par_us, 0.50),
                par_p95_us: exact_percentile_us(&mut par_us, 0.95),
                identical,
            }
        })
        .collect()
}

/// The honest one-line summary of what the latency curve measured on
/// *this* host, judged at the highest shard count (the only run where
/// racing actually fans out — at 1 shard it degenerates to the
/// sequential path and any delta is noise).  A speedup is claimed only
/// when one was actually observed.
fn latency_statement(runs: &[LatencyRun]) -> String {
    let last = match runs.last() {
        Some(run) => run,
        None => return "no latency runs".to_string(),
    };
    let speedup = last.speedup_p50();
    if speedup >= 1.05 {
        format!(
            "racing workers cut per-query p50 latency {speedup:.2}x at {} shards \
             ({} us -> {} us) on this host",
            last.shards, last.seq_p50_us, last.par_p50_us
        )
    } else if speedup >= 0.80 {
        format!(
            "no per-query p50 speedup measured at {} shards on this host ({speedup:.2}x, \
             {} us -> {} us): worker spawn overhead cancels the parallel scan at this \
             corpus size / core count; results stay bit-identical",
            last.shards, last.seq_p50_us, last.par_p50_us
        )
    } else {
        format!(
            "racing workers COST per-query latency at {} shards on this host ({speedup:.2}x, \
             {} us -> {} us): thread spawn dominates the scan at this corpus size",
            last.shards, last.seq_p50_us, last.par_p50_us
        )
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args)?;
    let config = SimilarityConfig::best_module_sets();
    let workflows = wf_bench::load_workflows(&options.source, options.demo_size)?;
    let n = workflows.len();
    if n < 2 {
        return Err("serving benchmark needs at least two workflows".to_string());
    }

    // Scaling curves: the loaded corpus alone, or one seeded demo corpus
    // per `--corpus-size` entry, each swept across every shard count.
    let mut curves: Vec<SizeCurve> = Vec::new();
    if options.corpus_sizes.is_empty() {
        curves.push(sweep_shard_counts(&workflows, &options));
    } else {
        for &size in &options.corpus_sizes {
            let sized = if size == n {
                workflows.clone()
            } else {
                wf_bench::demo_workflows(size, wf_bench::corpus::DEMO_SEED)
            };
            curves.push(sweep_shard_counts(&sized, &options));
        }
    }
    // The largest corpus carries the headline scaling claim.
    let headline = curves
        .iter()
        .max_by_key(|c| c.corpus_size)
        .expect("at least one curve");

    // Per-query latency vs shard count on the headline corpus: the
    // sequential frontier against racing per-shard workers, bit-identity
    // checked on every query.
    let latency_workflows = if options.corpus_sizes.is_empty() || headline.corpus_size == n {
        workflows.clone()
    } else {
        wf_bench::demo_workflows(headline.corpus_size, wf_bench::corpus::DEMO_SEED)
    };
    let latency_runs = sweep_query_latency(&latency_workflows, &options);
    let latency_summary = latency_statement(&latency_runs);

    let query_ids: Vec<WorkflowId> = workflows
        .iter()
        .map(|w| w.id.clone())
        .step_by((n / options.queries.min(n)).max(1))
        .take(options.queries)
        .collect();

    // Churn-while-query: the largest shard count behind RwLocks, one churn
    // thread cycling removals and re-additions while query workers run.
    let max_shards = options.shard_counts.iter().copied().max().unwrap_or(1);
    let service = Arc::new(
        CorpusService::new(ShardedCorpus::build(
            config.clone(),
            max_shards,
            workflows.clone(),
        ))
        .with_threads(options.threads),
    );
    let churn_pool: Vec<WorkflowId> = workflows
        .iter()
        .map(|w| w.id.clone())
        .filter(|id| !query_ids.contains(id))
        .collect();
    // The query side answers a fixed number of individually-timed queries
    // (so the phase can report true per-query p50/p95/p99, not per-batch
    // walls); the churn thread keeps removing and re-adding workflows
    // (through the per-shard write locks) and stops the moment the query
    // workers finish, so every counted churn op genuinely overlapped the
    // counted queries (`--churn-ops` only paces how many queries run).
    let total_churn_queries = options.churn_ops.div_ceil(10).max(3) * query_ids.len();
    let churn_latency = LatencyHistogram::new();
    let queries_done = AtomicBool::new(false);
    let query_cursor = AtomicUsize::new(0);
    let churn_started = Instant::now();
    let (queries_under_churn, churn_ops_done) = std::thread::scope(|scope| {
        let service = &service;
        let queries_done = &queries_done;
        let query_cursor = &query_cursor;
        let churn_latency = &churn_latency;
        let query_ids = &query_ids;
        let churner = scope.spawn(|| {
            let mut done = 0usize;
            for id in churn_pool.iter().cycle() {
                // ordering: Acquire — pairs with the Release store below
                // so the churner's final op count happens-after every
                // counted query; Relaxed could let the loop observe the
                // flag late and overshoot the measured window.
                if queries_done.load(Ordering::Acquire) {
                    break;
                }
                // Remove and re-add so the corpus size stays stable.
                if let Some(wf) = service.remove(id) {
                    done += 1;
                    service.add(wf);
                    done += 1;
                }
            }
            done
        });
        let workers: Vec<_> = (0..options.threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut served = 0usize;
                    loop {
                        // ordering: Relaxed — the cursor is a work ticket
                        // dispenser; fetch_add is already atomic and no
                        // other memory is published through it.
                        let i = query_cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total_churn_queries {
                            break;
                        }
                        let id = &query_ids[i % query_ids.len()];
                        let started = Instant::now();
                        if service.search(id, options.k).is_some() {
                            churn_latency.record(started.elapsed());
                            served += 1;
                        }
                    }
                    served
                })
            })
            .collect();
        let served: usize = workers
            .into_iter()
            .map(|w| w.join().expect("query worker panicked"))
            .sum();
        // ordering: Release — publishes "all counted queries issued" to
        // the churner's Acquire load above, closing the measured window.
        queries_done.store(true, Ordering::Release);
        (served, churner.join().expect("churn thread panicked"))
    });
    let churn_ms = churn_started.elapsed().as_secs_f64() * 1e3;
    let churn_qps = queries_under_churn as f64 / (churn_ms / 1e3).max(1e-9);
    let churn_lat = churn_latency.snapshot();

    // Network serving: the same service behind the wf-serve TCP front end,
    // hammered by concurrent retrying clients over real loopback sockets.
    // Most clients query; every eighth churns over the wire, so the
    // measured quantiles include add/remove write-lock interference plus
    // framing, syscalls and client retries.
    let server = Server::start(
        Arc::clone(&service),
        ServerConfig {
            workers: options.threads,
            ..ServerConfig::default()
        },
        None,
    )
    .map_err(|e| format!("cannot start loopback server: {e}"))?;
    let addr = server.addr();
    let workflow_by_id: std::collections::BTreeMap<WorkflowId, Workflow> = workflows
        .iter()
        .map(|w| (w.id.clone(), w.clone()))
        .collect();
    let net_queries_per_client = if options.smoke { 6 } else { 40 };
    let net_started = Instant::now();
    let (net_ok, net_degraded, net_errors, net_churn_ops, net_retries, net_latency) =
        std::thread::scope(|scope| {
            let query_ids = &query_ids;
            let churn_pool = &churn_pool;
            let workflow_by_id = &workflow_by_id;
            let net_latency = Arc::new(LatencyHistogram::new());
            let handles: Vec<_> = (0..options.clients)
                .map(|c| {
                    let latency = Arc::clone(&net_latency);
                    scope.spawn(move || {
                        let mut client = Client::new(
                            addr,
                            ClientConfig {
                                seed: 0xC0FFEE + c as u64,
                                ..ClientConfig::default()
                            },
                        );
                        let (mut ok, mut degraded, mut errors, mut churned) =
                            (0u64, 0u64, 0u64, 0u64);
                        if c % 8 == 7 && !churn_pool.is_empty() {
                            // Wire churner: remove and re-add its slice of
                            // the pool through the framed protocol.
                            for step in 0..net_queries_per_client {
                                let id =
                                    &churn_pool[(c + step * options.clients) % churn_pool.len()];
                                let wf = &workflow_by_id[id];
                                match (client.remove(id.as_str()), client.add(wf)) {
                                    (Ok(true), Ok(_)) => churned += 2,
                                    (Ok(false), Ok(_)) => churned += 1,
                                    _ => errors += 1,
                                }
                            }
                        } else {
                            for step in 0..net_queries_per_client {
                                let id = &query_ids[(c + step * options.clients) % query_ids.len()];
                                let started = Instant::now();
                                match client.search(id.as_str(), options.k as u32, 0) {
                                    Ok(outcome) => {
                                        latency.record(started.elapsed());
                                        ok += 1;
                                        if outcome.degraded {
                                            degraded += 1;
                                        }
                                    }
                                    Err(_) => errors += 1,
                                }
                            }
                        }
                        (ok, degraded, errors, churned, client.retries())
                    })
                })
                .collect();
            let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
            for handle in handles {
                let (ok, degraded, errors, churned, retries) =
                    handle.join().expect("network client panicked");
                totals.0 += ok;
                totals.1 += degraded;
                totals.2 += errors;
                totals.3 += churned;
                totals.4 += retries;
            }
            let lat = net_latency.snapshot();
            (totals.0, totals.1, totals.2, totals.3, totals.4, lat)
        });
    let net_ms = net_started.elapsed().as_secs_f64() * 1e3;
    let net_qps = net_ok as f64 / (net_ms / 1e3).max(1e-9);
    let server_stats: StatsSnapshot = server.metrics();
    server.shutdown();

    // Human-readable summary.
    println!(
        "serving benchmark ({}, top-{}, {} threads, median of {} reps):",
        headline.algorithm, options.k, options.threads, options.reps
    );
    let mut table = TextTable::new(vec![
        "corpus",
        "shards",
        "build ms",
        "batch ms",
        "queries/s",
        "identical",
        "scored",
        "pruned",
    ]);
    for curve in &curves {
        println!(
            "  corpus {}: {} queries, single-corpus baseline {:>8.1} ms",
            curve.corpus_size, curve.queries, curve.baseline_ms
        );
        for run in &curve.runs {
            table.row(vec![
                curve.corpus_size.to_string(),
                run.shards.to_string(),
                format!("{:.1}", run.build_ms),
                format!("{:.1}", run.batch_ms),
                format!("{:.0}", run.queries_per_s),
                run.identical.to_string(),
                run.scored.to_string(),
                run.pruned.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    let mut latency_table = TextTable::new(vec![
        "shards",
        "workers",
        "seq p50 us",
        "seq p95 us",
        "racing p50 us",
        "racing p95 us",
        "p50 speedup",
        "identical",
    ]);
    for run in &latency_runs {
        latency_table.row(vec![
            run.shards.to_string(),
            run.workers.to_string(),
            run.seq_p50_us.to_string(),
            run.seq_p95_us.to_string(),
            run.par_p50_us.to_string(),
            run.par_p95_us.to_string(),
            format!("{:.2}x", run.speedup_p50()),
            run.identical.to_string(),
        ]);
    }
    println!(
        "  per-query latency vs shard count ({} workflows, {} queries x {} reps):",
        latency_workflows.len(),
        options.queries.min(latency_workflows.len()),
        options.reps
    );
    println!("{}", latency_table.render());
    println!("  {latency_summary}");
    println!(
        "  churn: {churn_ops_done} ops on {max_shards} shards in {churn_ms:.1} ms, \
         {queries_under_churn} queries answered concurrently ({churn_qps:.0} queries/s, \
         p50 {} us, p95 {} us, p99 {} us)",
        churn_lat.quantile_us(0.50),
        churn_lat.quantile_us(0.95),
        churn_lat.quantile_us(0.99),
    );
    println!(
        "  network: {} clients on {addr} — {net_ok} queries ok ({net_degraded} degraded, \
         {net_errors} errors, {net_churn_ops} wire churn ops, {net_retries} retries) in \
         {net_ms:.1} ms = {net_qps:.0} queries/s; client p50 {} us, p95 {} us, p99 {} us; \
         server shed {} of {} requests",
        options.clients,
        net_latency.quantile_us(0.50),
        net_latency.quantile_us(0.95),
        net_latency.quantile_us(0.99),
        server_stats.shed,
        server_stats.requests,
    );

    if let Some(path) = &options.bench_json {
        let shard_reports = |runs: &[ShardRun], indent: &str| -> String {
            runs.iter()
                .map(|run| {
                    format!(
                        "{indent}{{\"shards\": {}, \"build_ms\": {:.3}, \"batch_wall_ms\": {:.3}, \
                         \"queries_per_s\": {:.1}, \"identical_hits\": {}, \
                         \"comparisons_scored\": {}, \"comparisons_pruned\": {}}}",
                        run.shards,
                        run.build_ms,
                        run.batch_ms,
                        run.queries_per_s,
                        run.identical,
                        run.scored,
                        run.pruned,
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n")
        };
        let latency_reports: Vec<String> = latency_runs
            .iter()
            .map(|run| {
                format!(
                    "    {{\"shards\": {}, \"workers\": {}, \"sequential_p50_us\": {}, \
                     \"sequential_p95_us\": {}, \"racing_p50_us\": {}, \"racing_p95_us\": {}, \
                     \"p50_speedup\": {:.3}, \"identical_hits\": {}}}",
                    run.shards,
                    run.workers,
                    run.seq_p50_us,
                    run.seq_p95_us,
                    run.par_p50_us,
                    run.par_p95_us,
                    run.speedup_p50(),
                    run.identical,
                )
            })
            .collect();
        let scale_curves: Vec<String> = curves
            .iter()
            .map(|curve| {
                format!(
                    "    {{\"corpus_size\": {}, \"queries\": {}, \
                     \"single_engine_wall_ms\": {:.3}, \"shard_counts\": [\n{}\n    ]}}",
                    curve.corpus_size,
                    curve.queries,
                    curve.baseline_ms,
                    shard_reports(&curve.runs, "      "),
                )
            })
            .collect();
        let report = format!(
            "{{\n  \"experiment\": \"serving_scatter_gather\",\n  \"corpus\": \"{}\",\n  \
             \"corpus_size\": {},\n  \"queries\": {},\n  \"k\": {},\n  \
             \"algorithm\": \"{}\",\n  \"threads\": {},\n  \"smoke\": {},\n  \
             \"reps\": {},\n  \
             \"single_engine_wall_ms\": {:.3},\n  \"shard_counts\": [\n{}\n  ],\n  \
             \"scale_curves\": [\n{}\n  ],\n  \
             \"query_latency\": {{\"corpus_size\": {}, \"queries\": {}, \"reps\": {}, \
             \"runs\": [\n{}\n  ], \"statement\": \"{}\"}},\n  \
             \"churn\": {{\"shards\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
             \"queries_completed\": {}, \"queries_per_s\": {:.1}, \"final_size\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}},\n  \
             \"network_serving\": {{\"clients\": {}, \"queries_per_client\": {}, \
             \"queries_ok\": {}, \"degraded\": {}, \"errors\": {}, \
             \"wire_churn_ops\": {}, \"client_retries\": {}, \"wall_ms\": {:.3}, \
             \"queries_per_s\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"server\": {{\"requests\": {}, \"responses_ok\": {}, \"shed\": {}, \
             \"degraded\": {}, \"bad_frames\": {}, \"search_p50_us\": {}, \
             \"search_p95_us\": {}, \"search_p99_us\": {}}}}}\n}}\n",
            wf_bench::json_escape(&options.source),
            headline.corpus_size,
            headline.queries,
            options.k,
            headline.algorithm,
            options.threads,
            options.smoke,
            options.reps,
            headline.baseline_ms,
            shard_reports(&headline.runs, "    "),
            scale_curves.join(",\n"),
            latency_workflows.len(),
            options.queries.min(latency_workflows.len()),
            options.reps,
            latency_reports.join(",\n"),
            wf_bench::json_escape(&latency_summary),
            max_shards,
            churn_ops_done,
            churn_ms,
            queries_under_churn,
            churn_qps,
            service.len(),
            churn_lat.quantile_us(0.50),
            churn_lat.quantile_us(0.95),
            churn_lat.quantile_us(0.99),
            options.clients,
            net_queries_per_client,
            net_ok,
            net_degraded,
            net_errors,
            net_churn_ops,
            net_retries,
            net_ms,
            net_qps,
            net_latency.quantile_us(0.50),
            net_latency.quantile_us(0.95),
            net_latency.quantile_us(0.99),
            server_stats.requests,
            server_stats.responses_ok,
            server_stats.shed,
            server_stats.degraded,
            server_stats.bad_frames,
            server_stats.search_p50_us,
            server_stats.search_p95_us,
            server_stats.search_p99_us,
        );
        std::fs::write(path, &report).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("  report -> {path}");
    }

    for curve in &curves {
        if let Some(diverged) = curve.runs.iter().find(|run| !run.identical) {
            return Err(format!(
                "sharded batch hits diverged from the single-corpus engine at {} shards \
                 (corpus {}) — this is a bug",
                diverged.shards, curve.corpus_size
            ));
        }
    }
    if let Some(diverged) = latency_runs.iter().find(|run| !run.identical) {
        return Err(format!(
            "racing scatter-gather hits diverged from the sequential frontier at {} shards \
             — this is a bug",
            diverged.shards
        ));
    }
    if let Some(factor) = options.assert_latency {
        // Regression guard against the sequential baseline: the racing
        // path may win or tie, but at the highest shard count its p50
        // must never exceed `factor` times the sequential p50 — thread
        // spawn overhead is real on starved runners, a blow-up is a bug.
        if let Some(last) = latency_runs.last() {
            if (last.par_p50_us as f64) > factor * (last.seq_p50_us as f64).max(1.0) {
                return Err(format!(
                    "latency regression at {} shards: racing p50 {} us vs sequential \
                     p50 {} us exceeds the --assert-latency factor {factor}",
                    last.shards, last.par_p50_us, last.seq_p50_us
                ));
            }
        }
    }
    if options.assert_scaling {
        let (first, last) = (
            headline.runs.first().expect("non-empty shard list"),
            headline.runs.last().expect("non-empty shard list"),
        );
        // Regression guard, not a speed-up claim: with the global frontier
        // the per-query scan work is identical at every shard count, so the
        // truthful batch-throughput curve is flat.  The guard fails only on
        // a real degradation (the old per-shard-heap design lost >4× here),
        // with a 15% allowance for scheduler/allocator noise — on a
        // one-core runner the multi-shard walk pays a few percent of
        // memory-locality tax that parallel hardware hides, and run-to-run
        // jitter on shared runners spans ±10% on its own.
        if last.queries_per_s < first.queries_per_s * 0.85 {
            return Err(format!(
                "scaling regression on the {}-workflow corpus: {} shards answered \
                 {:.0} queries/s but {} shards only {:.0} — the global frontier must \
                 keep batch throughput from degrading as shards grow",
                headline.corpus_size,
                first.shards,
                first.queries_per_s,
                last.shards,
                last.queries_per_s
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
