//! Figure 8 (and the accompanying text of Section 5.1.4): repository-derived
//! knowledge.
//!
//! * Part (a/b): ranking correctness of MS, PS and GE with type-equivalence
//!   preselection (`te`) and with Importance Projection (`ip`), against
//!   their unrestricted baselines.
//! * Pairwise-comparison reduction achieved by `te` (paper: factor ≈ 2.3,
//!   172k → 74k pairs on the ranking corpus).
//! * Module count reduction achieved by `ip` (paper: 11.3 → 4.7).
//! * GE computability: how many of the ranking pairs the exact search could
//!   not finish within budget, with and without `ip` (paper: 23/240 → 1).
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 400), `WFSIM_QUERIES` (default
//! 24), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_ged::GedBudget;
use wf_model::CorpusStats;
use wf_repo::{importance_projection, ImportanceConfig, ImportanceScorer, PreselectionStrategy};
use wf_sim::{MeasureKind, Preprocessing, SimilarityConfig, WorkflowSimilarity};

fn base_config(measure: MeasureKind) -> SimilarityConfig {
    match measure {
        MeasureKind::ModuleSets => SimilarityConfig::module_sets_default(),
        MeasureKind::PathSets => SimilarityConfig::path_sets_default(),
        _ => SimilarityConfig::graph_edit_default().with_ged_budget(GedBudget::small()),
    }
    .with_scheme(wf_sim::ModuleComparisonScheme::pll())
}

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 400),
        queries: env_param("WFSIM_QUERIES", 24),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 8: module pair preselection (te) and Importance Projection (ip)");
    println!(
        "setup: {} workflows, {} queries x {} candidates, pll module scheme",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);

    // Ranking quality under np/ta, np/te, ip/ta, ip/te for each measure.
    let mut table = TextTable::new(vec![
        "algorithm",
        "mean correctness",
        "stddev",
        "mean completeness",
    ]);
    for measure in [
        MeasureKind::ModuleSets,
        MeasureKind::PathSets,
        MeasureKind::GraphEdit,
    ] {
        for (preprocessing, preselection) in [
            (Preprocessing::None, PreselectionStrategy::AllPairs),
            (Preprocessing::None, PreselectionStrategy::TypeEquivalence),
            (
                Preprocessing::ImportanceProjection,
                PreselectionStrategy::AllPairs,
            ),
            (
                Preprocessing::ImportanceProjection,
                PreselectionStrategy::TypeEquivalence,
            ),
        ] {
            let algorithm = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
                base_config(measure)
                    .with_preprocessing(preprocessing)
                    .with_preselection(preselection),
            ));
            let score = experiment.evaluate(&algorithm);
            table.row(vec![
                score.name,
                fmt3(score.summary.mean_correctness),
                fmt3(score.summary.stddev_correctness),
                fmt3(score.summary.mean_completeness),
            ]);
        }
    }
    println!("{}", table.render());
    println!("paper shape: te keeps quality while cutting comparisons; ip helps most algorithms (PS stays stable), especially GE");
    println!();

    // Pairwise comparison reduction over the ranking pairs.
    let mut full_pairs = 0usize;
    let mut te_pairs = 0usize;
    let mut ge_np_not_exact = 0usize;
    let mut ge_ip_not_exact = 0usize;
    let mut pair_count = 0usize;
    let ge_np = WorkflowSimilarity::new(base_config(MeasureKind::GraphEdit));
    let ge_ip = WorkflowSimilarity::new(
        base_config(MeasureKind::GraphEdit).with_preprocessing(Preprocessing::ImportanceProjection),
    );
    let te_probe = WorkflowSimilarity::new(
        base_config(MeasureKind::ModuleSets)
            .with_preselection(PreselectionStrategy::TypeEquivalence),
    );
    for query in experiment.queries() {
        let query_wf = experiment.repository().get(query).expect("query exists");
        for candidate in experiment.candidates(query) {
            let candidate_wf = experiment
                .repository()
                .get(candidate)
                .expect("candidate exists");
            pair_count += 1;
            full_pairs += query_wf.module_count() * candidate_wf.module_count();
            te_pairs += te_probe.report(query_wf, candidate_wf).compared_pairs;
            if !ge_np
                .report(query_wf, candidate_wf)
                .graph_edit
                .expect("GE details")
                .outcome
                .is_exact()
            {
                ge_np_not_exact += 1;
            }
            if !ge_ip
                .report(query_wf, candidate_wf)
                .graph_edit
                .expect("GE details")
                .outcome
                .is_exact()
            {
                ge_ip_not_exact += 1;
            }
        }
    }
    println!(
        "module pair comparisons over the {} ranking pairs: all pairs = {}, te = {}, reduction factor = {:.1} (paper: 172k/74k = 2.3)",
        pair_count,
        full_pairs,
        te_pairs,
        full_pairs as f64 / te_pairs.max(1) as f64
    );

    // Module count reduction under ip.
    let scorer = ImportanceScorer::new(ImportanceConfig::type_based());
    let original: Vec<_> = experiment.repository().iter().cloned().collect();
    let projected: Vec<_> = original
        .iter()
        .map(|wf| importance_projection(wf, &scorer))
        .collect();
    let np_stats = CorpusStats::of(&original).expect("non-empty");
    let ip_stats = CorpusStats::of(&projected).expect("non-empty");
    println!(
        "average modules per workflow: np = {:.1}, ip = {:.1} (paper: 11.3 -> 4.7)",
        np_stats.mean_modules, ip_stats.mean_modules
    );
    println!(
        "GE pairs not solved exactly within budget: np = {}/{}, ip = {}/{} (paper: 23/240 -> 1/240)",
        ge_np_not_exact, pair_count, ge_ip_not_exact, pair_count
    );
}
