//! Figure 11: retrieval precision@k of the structural and annotational
//! measures.
//!
//! Three panels (relevance ≥related / ≥similar / ≥very similar); algorithms
//! BW, BT, MS and PS in np_ta and ip_te configurations (pll module scheme),
//! and GE with ip_te.  Findings to reproduce: MS and PS provide the best and
//! nearly identical precision; GE finds the very similar workflows but falls
//! behind for related/similar ones; BW is competitive at low thresholds but
//! misses the very similar workflows.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 300), `WFSIM_QUERIES` (default
//! 8), `WFSIM_SEED` (default 42).

use wf_bench::table::{curve_cells, fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RetrievalExperiment, RetrievalExperimentConfig};
use wf_ged::GedBudget;
use wf_gold::RelevanceThreshold;
use wf_repo::PreselectionStrategy;
use wf_sim::{ModuleComparisonScheme, Preprocessing, SimilarityConfig, WorkflowSimilarity};

fn with_knowledge(config: SimilarityConfig) -> SimilarityConfig {
    config
        .with_preprocessing(Preprocessing::ImportanceProjection)
        .with_preselection(PreselectionStrategy::TypeEquivalence)
}

fn main() {
    let config = RetrievalExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 300),
        queries: env_param("WFSIM_QUERIES", 8),
        top_k: 10,
        threads: 8,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 11: retrieval precision@k of annotational and structural algorithms");
    println!(
        "setup: top-{} retrieval over {} workflows, {} queries, median expert relevance",
        config.top_k, config.corpus_size, config.queries
    );
    println!();
    let experiment = RetrievalExperiment::prepare(&config);

    let pll = ModuleComparisonScheme::pll;
    let configurations = vec![
        SimilarityConfig::bag_of_words(),
        SimilarityConfig::bag_of_tags(),
        SimilarityConfig::module_sets_default().with_scheme(pll()),
        with_knowledge(SimilarityConfig::module_sets_default().with_scheme(pll())),
        SimilarityConfig::path_sets_default().with_scheme(pll()),
        with_knowledge(SimilarityConfig::path_sets_default().with_scheme(pll())),
        with_knowledge(
            SimilarityConfig::graph_edit_default()
                .with_scheme(pll())
                .with_ged_budget(GedBudget::small()),
        ),
    ];
    let algorithms: Vec<NamedAlgorithm> = configurations
        .into_iter()
        .map(|c| NamedAlgorithm::from_measure(WorkflowSimilarity::new(c)))
        .collect();

    let all_lists: Vec<_> = algorithms
        .iter()
        .map(|a| experiment.result_lists(a))
        .collect();
    let ratings = experiment.rate_results(&all_lists);

    for threshold in RelevanceThreshold::ALL {
        let mut table = TextTable::new(
            std::iter::once("algorithm".to_string())
                .chain((1..=config.top_k).map(|k| format!("P@{k}")))
                .collect::<Vec<_>>(),
        );
        for (algorithm, lists) in algorithms.iter().zip(&all_lists) {
            let curve = experiment.mean_precision(lists, &ratings, threshold);
            let mut cells = vec![algorithm.name.clone()];
            cells.extend(curve_cells(&curve));
            table.row(cells);
        }
        println!("relevance {}:", threshold.label());
        println!("{}", table.render());
    }

    // Extension beyond the paper: graded metrics over the same result lists
    // (nDCG uses the full Likert scale instead of a binary threshold).
    let mut graded = TextTable::new(vec!["algorithm", "nDCG@10", "MAP@10 (>=related)"]);
    for (algorithm, lists) in algorithms.iter().zip(&all_lists) {
        graded.row(vec![
            algorithm.name.clone(),
            fmt3(experiment.mean_ndcg(lists, &ratings, config.top_k)),
            fmt3(experiment.mean_average_precision(
                lists,
                &ratings,
                RelevanceThreshold::Related,
                config.top_k,
            )),
        ]);
    }
    println!("graded metrics (extension, see wf_gold::graded):");
    println!("{}", graded.render());
    println!("paper shape: MS ~ PS best for related/similar; GE competitive only for very similar; BW good at low thresholds but misses the very similar workflows; ip+te improves precision and stability most at >=related");
}
