//! Extended Table-1 measures on the ranking experiment.
//!
//! Figure 5 of the paper evaluates MS, PS, GE, BW and BT.  Table 1 lists
//! further approaches from prior work that the paper folds into those
//! classes: module label vectors \[33\], maximum common subgraphs
//! \[33, 18, 17\], graph kernels \[17\] and frequent module / tag sets
//! \[36\].  This experiment runs the explicit implementations of those
//! approaches (`wf_sim::extended`) through the same ranking evaluation, next
//! to the best framework configurations, extending the baseline comparison
//! to the full catalogue.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 300), `WFSIM_QUERIES` (default
//! 16), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_sim::{
    FrequentSetSimilarity, LabelVectorSimilarity, McsSimilarity, SimilarityConfig,
    WlKernelSimilarity, WorkflowSimilarity,
};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 300),
        queries: env_param("WFSIM_QUERIES", 16),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Extended Table-1 measures: ranking correctness next to the framework measures");
    println!(
        "setup: {} workflows, {} queries x {} candidates",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);

    // Repository-level measures need the corpus the queries live in.
    let fms = FrequentSetSimilarity::frequent_module_sets(experiment.repository());
    let fts = FrequentSetSimilarity::frequent_tag_sets(experiment.repository());
    let lv = LabelVectorSimilarity::new();
    let lv_tokens = LabelVectorSimilarity::tokenized();
    let mcs = McsSimilarity::default();
    let mcs_plm = McsSimilarity::label_matching();
    let wl_type = WlKernelSimilarity::default();
    let wl_label = WlKernelSimilarity::label_based();

    let algorithms = vec![
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(SimilarityConfig::bag_of_words())),
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(SimilarityConfig::best_module_sets())),
        NamedAlgorithm::from_fn("LV (label vectors [33])", move |a, b| {
            lv.similarity_opt(a, b)
        }),
        NamedAlgorithm::from_fn("LV_tokens (label vectors, tokenized)", move |a, b| {
            lv_tokens.similarity_opt(a, b)
        }),
        NamedAlgorithm::from_fn("MCS_pll (common subgraph [33,18])", move |a, b| {
            Some(mcs.similarity(a, b))
        }),
        NamedAlgorithm::from_fn("MCS_plm (common subgraph, strict labels)", move |a, b| {
            Some(mcs_plm.similarity(a, b))
        }),
        NamedAlgorithm::from_fn("WL_type (graph kernel [17])", move |a, b| {
            wl_type.similarity_opt(a, b)
        }),
        NamedAlgorithm::from_fn("WL_label (graph kernel, label based)", move |a, b| {
            wl_label.similarity_opt(a, b)
        }),
        NamedAlgorithm::from_fn("FMS (frequent module sets [36])", move |a, b| {
            fms.similarity_opt(a, b)
        }),
        NamedAlgorithm::from_fn("FTS (frequent tag sets [36])", move |a, b| {
            fts.similarity_opt(a, b)
        }),
    ];

    let mut table = TextTable::new(vec![
        "algorithm",
        "mean correctness",
        "stddev",
        "mean completeness",
        "unrankable queries",
    ]);
    for score in experiment.evaluate_all(&algorithms) {
        table.row(vec![
            score.name,
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
            score.unrankable_queries.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: edit-distance-based comparison (MS_ip_te_pll, MCS_pll)");
    println!("beats strict label matching (MCS_plm) and purely exact-label vectors");
    println!("(LV, WL_label), mirroring the paper's Section 5.1.2 finding; annotation");
    println!("signals (BW, FTS) remain strong when annotations are present, and the");
    println!("frequent-set measures trade correctness for completeness (Section 2.2).");
}
