//! Figure 5: baseline ranking evaluation.
//!
//! Mean ranking correctness (with standard deviation) and completeness of
//! the five measures in their basic, normalized configurations with uniform
//! attribute weights (`pw0`, no preselection, no projection): MS, PS, GE,
//! BW, BT.  The paper's findings to reproduce: BW is best, BT and PS almost
//! tie, then MS, and GE is clearly worst; the annotation measures tie
//! workflows (lower completeness) and BT cannot rank some queries.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 400), `WFSIM_QUERIES` (default
//! 24), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_ged::GedBudget;
use wf_sim::{SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 400),
        queries: env_param("WFSIM_QUERIES", 24),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 5: baseline ranking correctness/completeness (pw0, np, ta, normalized)");
    println!(
        "setup: {} workflows, {} queries x {} candidates",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();

    let experiment = RankingExperiment::prepare(&config);
    let algorithms = vec![
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::module_sets_default(),
        )),
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::path_sets_default(),
        )),
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::graph_edit_default().with_ged_budget(GedBudget::small()),
        )),
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(SimilarityConfig::bag_of_words())),
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(SimilarityConfig::bag_of_tags())),
    ];

    let mut table = TextTable::new(vec![
        "algorithm",
        "mean correctness",
        "stddev",
        "mean completeness",
        "unrankable queries",
    ]);
    for score in experiment.evaluate_all(&algorithms) {
        table.row(vec![
            score.name,
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
            score.unrankable_queries.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper shape: BW best, BT ~ PS, then MS, GE clearly worst; BT/BW tie candidates (completeness < 1); BT cannot rank some queries");
}
