//! Figure 12: ranking on the Galaxy corpus (transferability, Section 5.3).
//!
//! The ranking experiment is repeated on the Galaxy-like corpus with the
//! Galaxy module comparison schemes `gw1` (multiple attributes, uniform
//! weights) and `gll` (labels only, edit distance).  Findings to reproduce:
//! BW degrades badly because Galaxy workflows carry little annotation; MS
//! and PS beat GE; unlike on the Taverna corpus, the multi-attribute scheme
//! `gw1` beats the label-only `gll`.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 139), `WFSIM_QUERIES` (default
//! 8), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_corpus::{generate_galaxy_corpus, GalaxyCorpusConfig};
use wf_ged::GedBudget;
use wf_sim::{MeasureKind, ModuleComparisonScheme, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 139),
        queries: env_param("WFSIM_QUERIES", 8),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 12: ranking correctness on the Galaxy corpus (gw1 / gll schemes)");
    println!(
        "setup: {} Galaxy workflows, {} queries x {} candidates",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();

    let (corpus, meta) = generate_galaxy_corpus(&GalaxyCorpusConfig {
        workflows: config.corpus_size,
        seed: config.seed,
        ..GalaxyCorpusConfig::default()
    });
    let experiment = RankingExperiment::prepare_from_corpus(corpus, meta, &config);

    let mut algorithms: Vec<NamedAlgorithm> = Vec::new();
    for measure in [
        MeasureKind::ModuleSets,
        MeasureKind::PathSets,
        MeasureKind::GraphEdit,
    ] {
        for scheme in [ModuleComparisonScheme::gw1(), ModuleComparisonScheme::gll()] {
            let base = match measure {
                MeasureKind::ModuleSets => SimilarityConfig::module_sets_default(),
                MeasureKind::PathSets => SimilarityConfig::path_sets_default(),
                _ => SimilarityConfig::graph_edit_default().with_ged_budget(GedBudget::small()),
            };
            algorithms.push(NamedAlgorithm::from_measure(WorkflowSimilarity::new(
                base.with_scheme(scheme),
            )));
        }
    }
    algorithms.push(NamedAlgorithm::from_measure(WorkflowSimilarity::new(
        SimilarityConfig::bag_of_words(),
    )));
    algorithms.push(NamedAlgorithm::from_measure(WorkflowSimilarity::new(
        SimilarityConfig::bag_of_tags(),
    )));

    let mut table = TextTable::new(vec![
        "algorithm",
        "mean correctness",
        "stddev",
        "mean completeness",
        "unrankable queries",
    ]);
    for score in experiment.evaluate_all(&algorithms) {
        table.row(vec![
            score.name,
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
            score.unrankable_queries.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper shape: BW unsatisfying on Galaxy (sparse annotations); MS and PS beat GE; gw1 (multiple attributes) beats gll (labels only) on this corpus");
}
