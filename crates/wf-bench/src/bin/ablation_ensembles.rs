//! Ablation (paper Section 6, finding 5): beyond plain score averaging.
//!
//! The paper combines algorithms by averaging their scores and names
//! "advanced methods such as boosting or stacking" as future work.  This
//! ablation compares, on held-out queries:
//!
//! * the single best members (BW and MS_ip_te_pll),
//! * the paper's plain-average ensemble of the two,
//! * a weighted ensemble whose weights are grid-searched on training
//!   queries (`wf_sim::stacking::learn_weights`),
//! * a Borda rank-aggregation ensemble (`wf_sim::RankEnsemble`).
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 300), `WFSIM_QUERIES` (default
//! 20, split half/half into training and evaluation), `WFSIM_SEED`
//! (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_gold::{ranking_correctness_completeness, Ranking};
use wf_model::{Workflow, WorkflowId};
use wf_sim::{learn_weights, Ensemble, RankEnsemble, SimilarityConfig, WorkflowSimilarity};

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Mean ranking correctness of a scoring function over a set of queries.
fn mean_correctness(
    experiment: &RankingExperiment,
    queries: &[WorkflowId],
    score: &(dyn Fn(&Workflow, &Workflow) -> Option<f64> + Sync),
) -> f64 {
    let values: Vec<f64> = queries
        .iter()
        .map(|q| {
            let ranking = experiment.algorithm_ranking(q, score);
            if ranking.is_empty() {
                return 0.0;
            }
            let consensus = experiment.consensus(q).expect("consensus exists");
            ranking_correctness_completeness(&ranking, consensus).correctness
        })
        .collect();
    mean(&values)
}

/// Mean ranking correctness of a Borda rank ensemble over a set of queries.
fn borda_correctness(
    experiment: &RankingExperiment,
    queries: &[WorkflowId],
    ensemble: &RankEnsemble,
) -> f64 {
    let repo = experiment.repository();
    let values: Vec<f64> = queries
        .iter()
        .map(|q| {
            let Some(query_wf) = repo.get(q) else {
                return 0.0;
            };
            let candidates: Vec<&Workflow> = experiment
                .candidates(q)
                .iter()
                .filter_map(|id| repo.get(id))
                .collect();
            if candidates.is_empty() {
                return 0.0;
            }
            let scored = ensemble.rank(query_wf, &candidates);
            let ranking = Ranking::from_scores(scored, 1e-9);
            let consensus = experiment.consensus(q).expect("consensus exists");
            ranking_correctness_completeness(&ranking, consensus).correctness
        })
        .collect();
    mean(&values)
}

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 300),
        queries: env_param("WFSIM_QUERIES", 20),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Ablation: plain-average vs learned-weight vs rank-aggregation ensembles");
    println!(
        "setup: {} workflows, {} queries x {} candidates (half train, half eval)",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);
    let queries = experiment.queries().to_vec();
    let split = queries.len() / 2;
    let (train, eval) = queries.split_at(split.max(1).min(queries.len().saturating_sub(1)));

    let bw = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
    let ms = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let members = vec![bw.clone(), ms.clone()];

    // Learn ensemble weights on the training queries.
    let learned = learn_weights(&members, 10, |candidate: &Ensemble| {
        mean_correctness(&experiment, train, &|a, b| candidate.similarity_opt(a, b))
    });
    let learned_ensemble = Ensemble::weighted(members.clone(), learned.weights.clone());
    let mean_ensemble = Ensemble::new(members.clone());
    let borda = RankEnsemble::from_similarities(members.clone());

    println!(
        "learned weights on training queries: BW = {:.2}, MS_ip_te_pll = {:.2} (training correctness {:.3})",
        learned.weights[0], learned.weights[1], learned.objective
    );
    println!();

    let single_algorithms = vec![
        NamedAlgorithm::from_measure(bw),
        NamedAlgorithm::from_measure(ms),
    ];
    let mut table = TextTable::new(vec!["combiner", "mean correctness (eval queries)"]);
    for algorithm in &single_algorithms {
        let value = mean_correctness(&experiment, eval, &algorithm.score);
        table.row(vec![algorithm.name.clone(), fmt3(value)]);
    }
    table.row(vec![
        format!("{} (plain average)", mean_ensemble.name()),
        fmt3(mean_correctness(&experiment, eval, &|a, b| {
            mean_ensemble.similarity_opt(a, b)
        })),
    ]);
    table.row(vec![
        format!("{} (learned weights)", learned_ensemble.name()),
        fmt3(mean_correctness(&experiment, eval, &|a, b| {
            learned_ensemble.similarity_opt(a, b)
        })),
    ]);
    table.row(vec![
        borda.name(),
        fmt3(borda_correctness(&experiment, eval, &borda)),
    ]);
    println!("{}", table.render());
    println!("paper shape: every combiner beats the single algorithms; the advanced");
    println!("combiners are expected to be at least as good as the plain average.");
}
