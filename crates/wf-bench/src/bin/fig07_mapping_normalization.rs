//! Figure 7: module mapping strategy and normalization ablations.
//!
//! (1) simMS with greedy module mapping vs maximum-weight matching —
//!     the paper finds no quality difference (module mappings are mostly
//!     unambiguous).
//! (2) simGE without normalization vs the normalized baseline — the paper
//!     finds omitting normalization significantly reduces correctness.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 400), `WFSIM_QUERIES` (default
//! 24), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_ged::GedBudget;
use wf_matching::MappingStrategy;
use wf_sim::{Normalization, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 400),
        queries: env_param("WFSIM_QUERIES", 24),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 7: greedy mapping and missing normalization");
    println!(
        "setup: {} workflows, {} queries x {} candidates",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);

    let algorithms = vec![
        (
            "MS (maximum weight mapping)",
            WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        ),
        (
            "MS (greedy mapping)",
            WorkflowSimilarity::new(
                SimilarityConfig::module_sets_default().with_mapping(MappingStrategy::Greedy),
            ),
        ),
        (
            "GE (normalized)",
            WorkflowSimilarity::new(
                SimilarityConfig::graph_edit_default().with_ged_budget(GedBudget::small()),
            ),
        ),
        (
            "GE (no normalization)",
            WorkflowSimilarity::new(
                SimilarityConfig::graph_edit_default()
                    .with_ged_budget(GedBudget::small())
                    .with_normalization(Normalization::None),
            ),
        ),
    ];

    let mut table = TextTable::new(vec![
        "configuration",
        "mean correctness",
        "stddev",
        "mean completeness",
    ]);
    for (label, measure) in algorithms {
        let algorithm = NamedAlgorithm::from_fn(label, move |a, b| measure.similarity_opt(a, b));
        let score = experiment.evaluate(&algorithm);
        table.row(vec![
            score.name,
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: greedy ~ maximum-weight for MS; dropping normalization clearly hurts GE"
    );
}
