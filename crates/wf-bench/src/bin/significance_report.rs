//! Significance report: the paired tests behind the paper's p < 0.05 claims.
//!
//! The paper marks several comparisons as (not) statistically significant
//! using a paired t-test over the per-query ranking correctness values:
//!
//! * Section 5.1.1 — in the baseline evaluation only `GE_pw0` differs
//!   significantly from `BW`.
//! * Section 5.1.2 — the uniform scheme `pw0` performs significantly worse
//!   than `pll`.
//! * Section 5.1.3 — dropping normalization from GE significantly reduces
//!   correctness.
//! * Section 5.1.6 — the best ensembles improve significantly over any
//!   single algorithm.
//!
//! This binary re-runs those four comparisons on the synthetic corpus and
//! reports the paired t statistic, its two-tailed p-value and the Wilcoxon
//! signed-rank p-value as a distribution-free cross-check.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 300), `WFSIM_QUERIES` (default
//! 20), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_ged::GedBudget;
use wf_gold::stats::{paired_t_test, wilcoxon_signed_rank};
use wf_sim::{Ensemble, Normalization, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 300),
        queries: env_param("WFSIM_QUERIES", 20),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Significance report: paired tests behind the paper's p<0.05 statements");
    println!(
        "setup: {} workflows, {} queries x {} candidates",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);

    let measure = |cfg: SimilarityConfig| {
        NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            cfg.with_ged_budget(GedBudget::small()),
        ))
    };

    // The comparisons the paper calls out, as (label, first, second,
    // paper finding) tuples.
    let comparisons: Vec<(&str, NamedAlgorithm, NamedAlgorithm, &str)> = vec![
        (
            "5.1.1 baseline: GE_pw0 vs BW",
            measure(SimilarityConfig::graph_edit_default()),
            measure(SimilarityConfig::bag_of_words()),
            "significant (GE worse)",
        ),
        (
            "5.1.1 baseline: MS_pw0 vs BW",
            measure(SimilarityConfig::module_sets_default()),
            measure(SimilarityConfig::bag_of_words()),
            "not significant",
        ),
        (
            "5.1.2 module scheme: MS_pw0 vs MS_pll",
            measure(SimilarityConfig::module_sets_default()),
            measure(
                SimilarityConfig::module_sets_default()
                    .with_scheme(wf_sim::ModuleComparisonScheme::pll()),
            ),
            "significant (pw0 worse)",
        ),
        (
            "5.1.3 normalization: GE unnormalized vs GE normalized",
            measure(SimilarityConfig::graph_edit_default().with_normalization(Normalization::None)),
            measure(SimilarityConfig::graph_edit_default()),
            "significant (unnormalized worse)",
        ),
        (
            "5.1.6 ensemble: BW+MS_ip_te_pll vs BW",
            NamedAlgorithm::from_ensemble(Ensemble::bw_plus_module_sets()),
            measure(SimilarityConfig::bag_of_words()),
            "significant (ensemble better)",
        ),
    ];

    let mut table = TextTable::new(vec![
        "comparison",
        "mean diff",
        "t",
        "p (t-test)",
        "p (wilcoxon)",
        "sig. at 0.05",
        "paper",
    ]);
    for (label, first, second, paper) in &comparisons {
        let a = experiment.per_query_correctness(first);
        let b = experiment.per_query_correctness(second);
        let t = paired_t_test(&a, &b);
        let w = wilcoxon_signed_rank(&a, &b);
        let (mean_diff, t_stat, p_t) = match &t {
            Ok(test) => (test.mean_difference, test.statistic, test.p_value),
            Err(_) => (0.0, 0.0, 1.0),
        };
        let p_w = w.map(|test| test.p_value).unwrap_or(1.0);
        table.row(vec![
            label.to_string(),
            fmt3(mean_diff),
            fmt3(t_stat),
            fmt3(p_t),
            fmt3(p_w),
            if p_t < 0.05 { "yes" } else { "no" }.to_string(),
            paper.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper shape: the direction of each mean difference and which comparisons");
    println!("reach significance should match the paper's annotations; exact p-values");
    println!("depend on the synthetic corpus and expert panel.");
}
