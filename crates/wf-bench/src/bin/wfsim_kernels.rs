//! `wfsim_kernels` — microbenchmarks for the hot-path kernels: the
//! `u64` word-batched intersection merge (plus its galloping skewed-size
//! path) against the scalar three-way merge it replaced, and the
//! char-signature distance bound (a deliberately auto-vectorizable
//! per-bin loop) against the hand-written SWAR variant that was rejected
//! for being slower.
//!
//! Usage:
//! ```text
//! wfsim_kernels [--bench-json BENCH_kernels.json] [--reps N]
//!               [--pairs N] [--assert-speedup X]
//! ```
//!
//! Every case times the same pair set through both implementations (best
//! wall time of `--reps` passes, default 7) and reports ns/op plus the
//! speedup factor.  `--assert-speedup X` fails the run unless every
//! intersection case with sets of ≥ 32 tokens reaches at least `X`× —
//! the regression guard CI can pin the kernel rewrite with.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use wf_bench::table::TextTable;
use wf_text::signature::CharSignature;
use wf_text::{intersect_sorted, intersect_sorted_scalar};

struct Options {
    bench_json: Option<String>,
    reps: usize,
    pairs: usize,
    assert_speedup: Option<f64>,
}

const USAGE: &str = "usage: wfsim_kernels [--bench-json PATH] [--reps N] [--pairs N] \
                     [--assert-speedup X]";

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        bench_json: None,
        reps: 7,
        pairs: 256,
        assert_speedup: None,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} expects a value\n{USAGE}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--bench-json" => options.bench_json = Some(value(&mut i)?),
            "--reps" => {
                options.reps = value(&mut i)?
                    .parse()
                    .map_err(|_| "invalid --reps value".to_string())?
            }
            "--pairs" => {
                options.pairs = value(&mut i)?
                    .parse()
                    .map_err(|_| "invalid --pairs value".to_string())?
            }
            "--assert-speedup" => {
                options.assert_speedup = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|_| "invalid --assert-speedup value".to_string())?,
                )
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }
    options.reps = options.reps.max(1);
    options.pairs = options.pairs.max(1);
    Ok(options)
}

/// Deterministic xorshift stream — the bench must measure the same pair
/// set on every machine and run.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A sorted, deduplicated id set of exactly `len` ids drawn from
/// `[0, universe)` (universe is widened if needed to fit).
fn sorted_set(rng: &mut XorShift, len: usize, universe: u32) -> Vec<u32> {
    let universe = universe.max(len as u32 * 2);
    let mut ids: Vec<u32> = Vec::with_capacity(len * 2);
    while ids.len() < len {
        let missing = len - ids.len();
        ids.extend((0..missing * 2).map(|_| (rng.next() % u64::from(universe)) as u32));
        ids.sort_unstable();
        ids.dedup();
    }
    ids.truncate(len);
    ids
}

/// A plain histogram mirroring [`CharSignature`]'s binning, so the
/// baseline loop reads the same layout the library kernel does.
struct ScalarSignature {
    bins: [u8; 64],
    chars: u32,
}

impl ScalarSignature {
    fn of(text: &str) -> Self {
        let mut sig = ScalarSignature {
            bins: [0; 64],
            chars: 0,
        };
        for c in text.chars() {
            let bin = (c as u32 as usize) % 64;
            sig.bins[bin] = sig.bins[bin].saturating_add(1);
            sig.chars += 1;
        }
        sig
    }
}

/// The rejected hand-SWAR signature bound, kept here as the baseline the
/// library's auto-vectorized per-bin loop is measured against: eight
/// byte-lanes per `u64` word, borrow-free lane subtraction and a widening
/// horizontal sum.  On targets with packed-SIMD auto-vectorization the
/// plain loop beats this — which is exactly what the case demonstrates.
fn swar_signature_bound(a: &ScalarSignature, b: &ScalarSignature) -> usize {
    const HI: u64 = 0x8080_8080_8080_8080;
    const ONES: u64 = 0x0101_0101_0101_0101;
    fn bytes_abs_diff(x: u64, y: u64) -> u64 {
        let d = ((x | HI) - (y & !HI)) ^ ((x ^ !y) & HI);
        let u = (x | HI) - (y & !HI);
        let lt = ((!x & y) | (!(x ^ y) & !u)) & HI;
        let m = lt | (lt - (lt >> 7));
        (d ^ m) + (m & ONES)
    }
    fn sum_bytes(v: u64) -> u32 {
        const L8: u64 = 0x00FF_00FF_00FF_00FF;
        const L16: u64 = 0x0000_FFFF_0000_FFFF;
        let pairs = (v & L8) + ((v >> 8) & L8);
        let quads = (pairs & L16) + ((pairs >> 16) & L16);
        ((quads & 0xFFFF_FFFF) + (quads >> 32)) as u32
    }
    let mut l1 = 0u32;
    for at in (0..64).step_by(8) {
        let wa = u64::from_le_bytes(a.bins[at..at + 8].try_into().expect("8-byte chunk"));
        let wb = u64::from_le_bytes(b.bins[at..at + 8].try_into().expect("8-byte chunk"));
        l1 += sum_bytes(bytes_abs_diff(wa, wb));
    }
    (a.chars.abs_diff(b.chars) as usize).max(l1.div_ceil(2) as usize)
}

/// Best-of-reps wall time for `work`, returned as ns/op over `ops`.
///
/// A calibration pass first sizes an inner repeat count so every timed
/// measurement spans at least ~1 ms — without it the ns-scale cases sit
/// inside timer noise and the reported ratios wander run to run.
fn time_ns_per_op(reps: usize, ops: usize, mut work: impl FnMut() -> u64) -> (f64, u64) {
    let started = Instant::now();
    let checksum = work();
    let once = started.elapsed().as_secs_f64().max(1e-9);
    let inner = (1e-3 / once).ceil().max(1.0) as usize;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        for _ in 0..inner {
            assert_eq!(work(), checksum, "non-deterministic benchmark body");
        }
        let elapsed = started.elapsed().as_secs_f64();
        best = best.min(elapsed);
    }
    (best * 1e9 / (ops * inner) as f64, checksum)
}

struct CaseResult {
    name: String,
    size_a: usize,
    size_b: usize,
    baseline_ns: f64,
    kernel_ns: f64,
    speedup: f64,
    intersection_guarded: bool,
}

/// One intersection case: `pairs` pre-generated (a, b) sets, both kernels
/// timed over the identical pair list, checksums compared.
fn intersection_case(
    name: &str,
    len_a: usize,
    len_b: usize,
    universe: u32,
    options: &Options,
    seed: u64,
) -> CaseResult {
    let mut rng = XorShift(seed | 1);
    let sets: Vec<(Vec<u32>, Vec<u32>)> = (0..options.pairs)
        .map(|_| {
            (
                sorted_set(&mut rng, len_a, universe),
                sorted_set(&mut rng, len_b, universe),
            )
        })
        .collect();
    let (baseline_ns, baseline_sum) = time_ns_per_op(options.reps, sets.len(), || {
        sets.iter()
            .map(|(a, b)| intersect_sorted_scalar(black_box(a), black_box(b)) as u64)
            .sum()
    });
    let (kernel_ns, kernel_sum) = time_ns_per_op(options.reps, sets.len(), || {
        sets.iter()
            .map(|(a, b)| intersect_sorted(black_box(a), black_box(b)) as u64)
            .sum()
    });
    assert_eq!(
        baseline_sum, kernel_sum,
        "{name}: kernels disagree — benchmark void"
    );
    CaseResult {
        name: name.to_string(),
        size_a: len_a,
        size_b: len_b,
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns.max(1e-9),
        // The acceptance guard pins the cases whose *small* side sits at
        // the 32-token threshold the kernel rewrite was specified against;
        // larger balanced merges are reported but converge to the
        // branchless-merge plateau (~1.5-1.7×).
        intersection_guarded: len_a.min(len_b) == 32,
    }
}

/// The signature-bound case over synthetic label-like strings: library
/// kernel (auto-vectorized per-bin loop) vs the rejected SWAR variant.
fn signature_case(options: &Options, seed: u64) -> CaseResult {
    let mut rng = XorShift(seed | 1);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz_ 0123456789".chars().collect();
    let label = |rng: &mut XorShift, len: usize| -> String {
        (0..len)
            .map(|_| alphabet[(rng.next() as usize) % alphabet.len()])
            .collect()
    };
    let labels: Vec<(String, String)> = (0..options.pairs)
        .map(|_| {
            let la = 8 + (rng.next() % 56) as usize;
            let lb = 8 + (rng.next() % 56) as usize;
            let a = label(&mut rng, la);
            let b = label(&mut rng, lb);
            (a, b)
        })
        .collect();
    let sigs: Vec<(CharSignature, CharSignature)> = labels
        .iter()
        .map(|(a, b)| (CharSignature::of(a), CharSignature::of(b)))
        .collect();
    let plain: Vec<(ScalarSignature, ScalarSignature)> = labels
        .iter()
        .map(|(a, b)| (ScalarSignature::of(a), ScalarSignature::of(b)))
        .collect();
    let (baseline_ns, baseline_sum) = time_ns_per_op(options.reps, plain.len(), || {
        plain
            .iter()
            .map(|(a, b)| swar_signature_bound(black_box(a), black_box(b)) as u64)
            .sum()
    });
    let (kernel_ns, kernel_sum) = time_ns_per_op(options.reps, sigs.len(), || {
        sigs.iter()
            .map(|(a, b)| black_box(a).distance_lower_bound(black_box(b)) as u64)
            .sum()
    });
    assert_eq!(
        baseline_sum, kernel_sum,
        "signature_bound: kernels disagree — benchmark void"
    );
    CaseResult {
        name: "signature_bound_vs_swar".to_string(),
        size_a: 64,
        size_b: 64,
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns.max(1e-9),
        intersection_guarded: false,
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args)?;

    // Dense overlap (universe 4× the size) stresses the word merge;
    // sparse (16×) matches real token vocabularies; the skewed cases
    // route through the galloping path.
    let mut results = vec![
        intersection_case("intersect_32", 32, 32, 128, &options, 0x5EED_0001),
        intersection_case("intersect_128_dense", 128, 128, 512, &options, 0x5EED_0002),
        intersection_case(
            "intersect_128_sparse",
            128,
            128,
            2048,
            &options,
            0x5EED_0012,
        ),
        intersection_case(
            "intersect_1024_dense",
            1024,
            1024,
            4096,
            &options,
            0x5EED_0003,
        ),
        intersection_case(
            "intersect_1024_sparse",
            1024,
            1024,
            16384,
            &options,
            0x5EED_0013,
        ),
        intersection_case(
            "intersect_8192_dense",
            8192,
            8192,
            32768,
            &options,
            0x5EED_0004,
        ),
        intersection_case(
            "intersect_skew_8_1024",
            8,
            1024,
            8192,
            &options,
            0x5EED_0005,
        ),
        intersection_case(
            "intersect_skew_32_8192",
            32,
            8192,
            65536,
            &options,
            0x5EED_0006,
        ),
    ];
    results.push(signature_case(&options, 0x5EED_0007));

    println!(
        "kernel microbench ({} pairs per case, best of {} reps):",
        options.pairs, options.reps
    );
    let mut table = TextTable::new(vec![
        "case",
        "|a|",
        "|b|",
        "baseline ns/op",
        "kernel ns/op",
        "speedup",
    ]);
    for r in &results {
        table.row(vec![
            r.name.clone(),
            r.size_a.to_string(),
            r.size_b.to_string(),
            format!("{:.1}", r.baseline_ns),
            format!("{:.1}", r.kernel_ns),
            format!("{:.2}x", r.speedup),
        ]);
    }
    println!("{}", table.render());

    if let Some(path) = &options.bench_json {
        let cases: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "    {{\"case\": \"{}\", \"size_a\": {}, \"size_b\": {}, \
                     \"baseline_ns_per_op\": {:.2}, \"kernel_ns_per_op\": {:.2}, \
                     \"speedup\": {:.3}}}",
                    r.name, r.size_a, r.size_b, r.baseline_ns, r.kernel_ns, r.speedup
                )
            })
            .collect();
        let report = format!(
            "{{\n  \"experiment\": \"kernel_microbench\",\n  \"pairs_per_case\": {},\n  \
             \"reps\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
            options.pairs,
            options.reps,
            cases.join(",\n")
        );
        std::fs::write(path, &report).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("  report -> {path}");
    }

    if let Some(min) = options.assert_speedup {
        for r in results.iter().filter(|r| r.intersection_guarded) {
            if r.speedup < min {
                return Err(format!(
                    "kernel regression: {} reached only {:.2}x (required {:.1}x)",
                    r.name, r.speedup, min
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
