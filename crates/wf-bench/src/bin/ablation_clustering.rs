//! Ablation: clustering quality of the similarity measures.
//!
//! The paper motivates similarity measures with repository management tasks
//! such as "grouping of workflows into functional clusters" and "detection
//! of functionally equivalent workflows" (Section 1) and several of the
//! catalogued prior studies evaluate through clustering.  This experiment
//! clusters a synthetic corpus with each measure (agglomerative clustering
//! with average linkage, cut at the latent family count) and scores the
//! result against the latent family structure with purity, adjusted Rand
//! index and NMI.  A near-duplicate report at a high threshold exercises the
//! duplicate-detection use case.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 120), `WFSIM_SEED` (default
//! 42), `WFSIM_THREADS` (default 4).

use wf_bench::env_param;
use wf_bench::table::{fmt3, TextTable};
use wf_cluster::{
    adjusted_rand_index, duplicate_pairs, hierarchical_clustering, normalized_mutual_information,
    purity, threshold_clustering, Linkage, PairwiseSimilarities,
};
use wf_sim::{
    Corpus, LabelVectorSimilarity, McsSimilarity, Measure, SimilarityConfig, WlKernelSimilarity,
};

/// How one measure's matrix is computed: through a shared profiled
/// [`Corpus`] (the framework measures) or through the per-pair `Measure`
/// trait (the extended measures, which have no profiled form).
enum MatrixSource {
    Profiled(SimilarityConfig),
    Legacy(Box<dyn Measure + Sync>),
}

fn main() {
    let corpus_size = env_param("WFSIM_CORPUS_SIZE", 120);
    let seed = env_param("WFSIM_SEED", 42) as u64;
    let threads = env_param("WFSIM_THREADS", 4);
    println!("Ablation: clustering quality by similarity measure");
    let (workflows, meta) = wf_bench::demo_workflows_with_meta(corpus_size, seed);
    let truth: Vec<usize> = workflows
        .iter()
        .map(|wf| meta.get(&wf.id).map(|m| m.family).unwrap_or(usize::MAX))
        .collect();
    let family_count = {
        let mut families: Vec<usize> = truth.clone();
        families.sort_unstable();
        families.dedup();
        families.len()
    };
    println!(
        "setup: {} workflows in {} latent families, average-linkage cut at k = {}",
        workflows.len(),
        family_count,
        family_count
    );
    println!();

    let measures: Vec<(String, MatrixSource)> = vec![
        (
            "BW".to_string(),
            MatrixSource::Profiled(SimilarityConfig::bag_of_words()),
        ),
        (
            "MS_ip_te_pll".to_string(),
            MatrixSource::Profiled(SimilarityConfig::best_module_sets()),
        ),
        (
            "LV".to_string(),
            MatrixSource::Legacy(Box::new(LabelVectorSimilarity::new())),
        ),
        (
            "MCS_pll".to_string(),
            MatrixSource::Legacy(Box::new(McsSimilarity::default())),
        ),
        (
            "WL_label".to_string(),
            MatrixSource::Legacy(Box::new(WlKernelSimilarity::label_based())),
        ),
    ];

    let mut table = TextTable::new(vec![
        "measure",
        "purity",
        "ARI",
        "NMI",
        "clusters@0.8",
        "duplicate pairs@0.95",
    ]);
    for (name, source) in &measures {
        let matrix = match source {
            MatrixSource::Profiled(config) => {
                let corpus = Corpus::build(config.clone(), workflows.clone());
                PairwiseSimilarities::compute_profiled_parallel(&corpus, threads)
            }
            MatrixSource::Legacy(measure) => {
                PairwiseSimilarities::compute_parallel(&workflows, measure.as_ref(), threads)
            }
        };
        let dendrogram = hierarchical_clustering(&matrix, Linkage::Average);
        let clusters = dendrogram.cut_k(family_count);
        let threshold_clusters = threshold_clustering(&matrix, 0.8);
        let duplicates = duplicate_pairs(&matrix, 0.95);
        table.row(vec![
            name.clone(),
            fmt3(purity(&clusters, &truth)),
            fmt3(adjusted_rand_index(&clusters, &truth)),
            fmt3(normalized_mutual_information(&clusters, &truth)),
            threshold_clusters.cluster_count().to_string(),
            duplicates.len().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: structural measures with repository knowledge (MS_ip_te_pll)");
    println!("group workflows by function at least as well as the annotation measure.");
    println!("Thresholded common-subgraph comparison (MCS) separates mutation-derived");
    println!("families sharply, whereas the purely exact-label measures (LV, WL_label)");
    println!("suffer most from label noise — the clustering view of the paper's");
    println!("finding that edit-distance module comparison beats strict label matching.");
}
