//! Figure 6: impact of the module comparison scheme (pX) on ranking.
//!
//! Part (a): simMS with `pw0`, `pw3`, `pll`, `plm`.
//! Part (b): simPS and simGE with `pw3` (compared to their pw0 baselines).
//!
//! Findings to reproduce: the uniform `pw0` is worst; `pll` ties with the
//! tuned `pw3`; the strict `plm` gains correctness only by losing
//! completeness (ties everything it cannot match exactly).
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 400), `WFSIM_QUERIES` (default
//! 24), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_ged::GedBudget;
use wf_sim::{MeasureKind, ModuleComparisonScheme, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 400),
        queries: env_param("WFSIM_QUERIES", 24),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 6: module comparison schemes (pX)");
    println!(
        "setup: {} workflows, {} queries x {} candidates",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);

    // Part (a): simMS under the four schemes.
    let mut part_a = TextTable::new(vec![
        "algorithm",
        "mean correctness",
        "stddev",
        "mean completeness",
    ]);
    for scheme in [
        ModuleComparisonScheme::pw0(),
        ModuleComparisonScheme::pw3(),
        ModuleComparisonScheme::pll(),
        ModuleComparisonScheme::plm(),
    ] {
        let algorithm = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::module_sets_default().with_scheme(scheme),
        ));
        let score = experiment.evaluate(&algorithm);
        part_a.row(vec![
            score.name,
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
        ]);
    }
    println!("(a) simMS under pw0 / pw3 / pll / plm");
    println!("{}", part_a.render());
    println!(
        "paper shape: pw0 worst; pll ~ pw3; plm gains correctness only by losing completeness"
    );
    println!();

    // Part (b): simPS and simGE with pw3 vs their pw0 baselines.
    let mut part_b = TextTable::new(vec![
        "algorithm",
        "mean correctness",
        "stddev",
        "mean completeness",
    ]);
    for measure in [MeasureKind::PathSets, MeasureKind::GraphEdit] {
        for scheme in [ModuleComparisonScheme::pw0(), ModuleComparisonScheme::pw3()] {
            let base = match measure {
                MeasureKind::PathSets => SimilarityConfig::path_sets_default(),
                _ => SimilarityConfig::graph_edit_default().with_ged_budget(GedBudget::small()),
            };
            let algorithm =
                NamedAlgorithm::from_measure(WorkflowSimilarity::new(base.with_scheme(scheme)));
            let score = experiment.evaluate(&algorithm);
            part_b.row(vec![
                score.name,
                fmt3(score.summary.mean_correctness),
                fmt3(score.summary.stddev_correctness),
                fmt3(score.summary.mean_completeness),
            ]);
        }
    }
    println!("(b) simPS and simGE with pw3 (against their pw0 baselines)");
    println!("{}", part_b.render());
    println!("paper shape: pw3 lifts PS ahead of BW; the effect on GE is much smaller");
}
