//! Ablation (paper Section 5.1.4, "future work"): manual, type-based
//! importance selection vs automatic, frequency-adjusted selection.
//!
//! The paper selects important modules manually by type and names
//! frequency-based automatic selection as an open research direction.  This
//! ablation runs the ranking experiment with three MS variants: no
//! projection, the paper's manual projection, and the frequency-adjusted
//! projection built from repository usage statistics.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 400), `WFSIM_QUERIES` (default
//! 24), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RankingExperiment, RankingExperimentConfig};
use wf_repo::{ImportanceConfig, PreselectionStrategy, UsageStatistics};
use wf_sim::{ModuleComparisonScheme, Preprocessing, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 400),
        queries: env_param("WFSIM_QUERIES", 24),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!(
        "Ablation: manual (type-based) vs automatic (frequency-adjusted) importance selection"
    );
    println!(
        "setup: {} workflows, {} queries x {} candidates, MS with pll/te",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();
    let experiment = RankingExperiment::prepare(&config);
    let usage = UsageStatistics::from_repository(experiment.repository());

    let base = || {
        SimilarityConfig::module_sets_default()
            .with_scheme(ModuleComparisonScheme::pll())
            .with_preselection(PreselectionStrategy::TypeEquivalence)
    };
    let no_projection = WorkflowSimilarity::new(base());
    let manual =
        WorkflowSimilarity::new(base().with_preprocessing(Preprocessing::ImportanceProjection));
    let mut automatic_config = base().with_preprocessing(Preprocessing::ImportanceProjection);
    automatic_config.importance = ImportanceConfig::frequency_based();
    let automatic = WorkflowSimilarity::with_usage(automatic_config, usage);

    let algorithms = vec![
        NamedAlgorithm::from_fn("MS_np_te_pll (no projection)", move |a, b| {
            no_projection.similarity_opt(a, b)
        }),
        NamedAlgorithm::from_fn("MS_ip_te_pll (manual, type-based)", move |a, b| {
            manual.similarity_opt(a, b)
        }),
        NamedAlgorithm::from_fn(
            "MS_ip_te_pll (automatic, frequency-adjusted)",
            move |a, b| automatic.similarity_opt(a, b),
        ),
    ];

    let mut table = TextTable::new(vec![
        "configuration",
        "mean correctness",
        "stddev",
        "mean completeness",
    ]);
    for score in experiment.evaluate_all(&algorithms) {
        table.row(vec![
            score.name,
            fmt3(score.summary.mean_correctness),
            fmt3(score.summary.stddev_correctness),
            fmt3(score.summary.mean_completeness),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: the automatic selection is competitive with the manual one, supporting the paper's future-work hypothesis");
}
