//! Figure 10: retrieval precision@k for simMS under different module
//! comparison schemes, with and without repository knowledge.
//!
//! Three panels, one per relevance threshold (≥related, ≥similar,
//! ≥very similar); six configurations: {np_ta, ip_te} × {pw3, pll, plm}.
//! Findings to reproduce: differences shrink as the threshold gets stricter
//! (finding the most similar workflows is easy for every scheme); `plm` is
//! worst for related workflows; repository knowledge (ip, te) helps and
//! favours `pll`.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 300), `WFSIM_QUERIES` (default
//! 8), `WFSIM_SEED` (default 42).

use wf_bench::table::{curve_cells, TextTable};
use wf_bench::{env_param, NamedAlgorithm, RetrievalExperiment, RetrievalExperimentConfig};
use wf_gold::RelevanceThreshold;
use wf_repo::PreselectionStrategy;
use wf_sim::{ModuleComparisonScheme, Preprocessing, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let config = RetrievalExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 300),
        queries: env_param("WFSIM_QUERIES", 8),
        top_k: 10,
        threads: 8,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!(
        "Figure 10: retrieval precision@k for simMS under module schemes x repository knowledge"
    );
    println!(
        "setup: top-{} retrieval over {} workflows, {} queries, median expert relevance",
        config.top_k, config.corpus_size, config.queries
    );
    println!();
    let experiment = RetrievalExperiment::prepare(&config);

    let configurations: Vec<SimilarityConfig> = [
        ModuleComparisonScheme::pw3(),
        ModuleComparisonScheme::pll(),
        ModuleComparisonScheme::plm(),
    ]
    .into_iter()
    .flat_map(|scheme| {
        [
            SimilarityConfig::module_sets_default().with_scheme(scheme.clone()),
            SimilarityConfig::module_sets_default()
                .with_scheme(scheme)
                .with_preprocessing(Preprocessing::ImportanceProjection)
                .with_preselection(PreselectionStrategy::TypeEquivalence),
        ]
    })
    .collect();

    let algorithms: Vec<NamedAlgorithm> = configurations
        .into_iter()
        .map(|c| NamedAlgorithm::from_measure(WorkflowSimilarity::new(c)))
        .collect();

    // Run retrieval once per algorithm, pool the results for rating.
    let all_lists: Vec<_> = algorithms
        .iter()
        .map(|a| experiment.result_lists(a))
        .collect();
    let ratings = experiment.rate_results(&all_lists);

    for threshold in RelevanceThreshold::ALL {
        let mut table = TextTable::new(
            std::iter::once("algorithm".to_string())
                .chain((1..=config.top_k).map(|k| format!("P@{k}")))
                .collect::<Vec<_>>(),
        );
        for (algorithm, lists) in algorithms.iter().zip(&all_lists) {
            let curve = experiment.mean_precision(lists, &ratings, threshold);
            let mut cells = vec![algorithm.name.clone()];
            cells.extend(curve_cells(&curve));
            table.row(cells);
        }
        println!("relevance {}:", threshold.label());
        println!("{}", table.render());
    }
    println!("paper shape: plm worst at >=related; pll ~ pw3 without knowledge; ip+te lifts all and puts pll ahead; at >=very_similar all configurations converge");
}
