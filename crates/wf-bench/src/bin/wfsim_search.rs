//! `wfsim_search` — a small command-line similarity search tool.
//!
//! Usage:
//! ```text
//! wfsim_search <corpus.json> <query-workflow-id> [k] [algorithm]
//! ```
//!
//! * `corpus.json` — a JSON array of workflows (the format written by
//!   `wf_model::json::corpus_to_json`); pass `--demo` instead to search a
//!   freshly generated synthetic corpus.
//! * `query-workflow-id` — the id of the query workflow inside the corpus.
//! * `k` — number of results (default 10).
//! * `algorithm` — one of `ms`, `ps`, `bw`, `bt`, `ensemble`
//!   (default `ensemble` = BW + MS_ip_te_pll).

use std::process::ExitCode;

use wf_bench::table::TextTable;
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_model::{json, Workflow, WorkflowId};
use wf_repo::{Repository, SearchEngine};
use wf_sim::{Ensemble, SimilarityConfig, WorkflowSimilarity};

fn load_corpus(source: &str) -> Result<Vec<Workflow>, String> {
    if source == "--demo" {
        let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(200, 7));
        return Ok(corpus);
    }
    let text = std::fs::read_to_string(source)
        .map_err(|e| format!("cannot read corpus file '{source}': {e}"))?;
    json::corpus_from_json(&text).map_err(|e| format!("cannot parse corpus '{source}': {e}"))
}

type Scorer = Box<dyn Fn(&Workflow, &Workflow) -> f64 + Sync>;

fn scorer(algorithm: &str) -> Result<Scorer, String> {
    match algorithm {
        "ms" => {
            let m = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
            Ok(Box::new(move |a, b| m.similarity(a, b)))
        }
        "ps" => {
            let m = WorkflowSimilarity::new(SimilarityConfig::best_path_sets());
            Ok(Box::new(move |a, b| m.similarity(a, b)))
        }
        "bw" => {
            let m = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
            Ok(Box::new(move |a, b| m.similarity(a, b)))
        }
        "bt" => {
            let m = WorkflowSimilarity::new(SimilarityConfig::bag_of_tags());
            Ok(Box::new(move |a, b| m.similarity(a, b)))
        }
        "ensemble" => {
            let e = Ensemble::bw_plus_module_sets();
            Ok(Box::new(move |a, b| e.similarity(a, b)))
        }
        other => Err(format!(
            "unknown algorithm '{other}' (expected ms, ps, bw, bt or ensemble)"
        )),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return Err(
            "usage: wfsim_search <corpus.json | --demo> <query-workflow-id> [k] [algorithm]"
                .to_string(),
        );
    }
    let corpus = load_corpus(&args[0])?;
    let repository = Repository::from_workflows(corpus);
    let query_id = WorkflowId::new(args[1].clone());
    let query = repository
        .get(&query_id)
        .ok_or_else(|| format!("query workflow '{query_id}' not found in the corpus"))?
        .clone();
    let k: usize = args
        .get(2)
        .map(|v| v.parse().map_err(|_| format!("invalid k '{v}'")))
        .transpose()?
        .unwrap_or(10);
    let algorithm = args.get(3).map(String::as_str).unwrap_or("ensemble");
    let score = scorer(algorithm)?;

    let engine = SearchEngine::new(&repository, score).with_threads(8);
    let hits = engine.top_k_parallel(&query, k);

    println!(
        "top-{k} workflows similar to {} (\"{}\") by {algorithm}:",
        query.id,
        query.annotations.title.as_deref().unwrap_or("untitled")
    );
    let mut table = TextTable::new(vec!["rank", "id", "score", "title"]);
    for (rank, hit) in hits.iter().enumerate() {
        let title = repository
            .get(&hit.id)
            .and_then(|wf| wf.annotations.title.clone())
            .unwrap_or_default();
        table.row(vec![
            (rank + 1).to_string(),
            hit.id.as_str().to_string(),
            format!("{:.3}", hit.score),
            title,
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
