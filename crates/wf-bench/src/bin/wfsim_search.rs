//! `wfsim_search` — a small command-line similarity search tool.
//!
//! Usage:
//! ```text
//! wfsim_search <corpus.json | --demo> <query-workflow-id> [k] [algorithm]
//!              [--engine scan|indexed] [--threads N] [--demo-size N]
//! wfsim_search <corpus.json | --demo> --bench-json BENCH_retrieval.json
//!              [--quick] [--queries N] [algorithm]
//! ```
//!
//! * `corpus.json` — a JSON array of workflows (the format written by
//!   `wf_model::json::corpus_to_json`); pass `--demo` instead to search a
//!   freshly generated synthetic corpus (`--demo-size` workflows).
//! * `query-workflow-id` — the id of the query workflow inside the corpus.
//! * `k` — number of results (default 10).
//! * `algorithm` — one of `ms`, `ps`, `bw`, `bt`, `ensemble`
//!   (default `ensemble` = BW + MS_ip_te_pll for interactive search, `ms`
//!   for benchmark mode).
//! * `--engine` — `indexed` (default) profiles the corpus once and answers
//!   through the inverted-index engine with upper-bound pruning; `scan`
//!   exhaustively scores every workflow per query (the seed path).  Both
//!   return identical hit lists.
//! * `--bench-json PATH` — benchmark mode: time both engines over a query
//!   set and write a machine-readable report (used by CI to track the perf
//!   trajectory); `--quick` shrinks the corpus for smoke runs.

use std::process::ExitCode;
use std::time::Instant;

use wf_bench::table::TextTable;
use wf_model::{Workflow, WorkflowId};
use wf_repo::{Repository, SearchEngine, SearchStats};
use wf_sim::{Corpus, Ensemble, SimilarityConfig, WorkflowSimilarity};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Scan,
    Indexed,
}

struct Options {
    source: String,
    query: Option<String>,
    k: usize,
    algorithm: String,
    engine: Engine,
    threads: usize,
    demo_size: usize,
    bench_json: Option<String>,
    quick: bool,
    queries: usize,
}

const USAGE: &str =
    "usage: wfsim_search <corpus.json | --demo> <query-workflow-id> [k] [algorithm] \
                     [--engine scan|indexed] [--threads N] [--demo-size N] \
                     [--bench-json PATH [--quick] [--queries N]]";

fn flag_value(args: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} expects a value"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut engine = Engine::Indexed;
    let mut threads = 8usize;
    let mut demo_size = 0usize; // 0 = pick by mode
    let mut bench_json = None;
    let mut quick = false;
    let mut queries = None;
    let mut source = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--demo" => source = Some("--demo".to_string()),
            "--engine" => {
                engine = match flag_value(args, &mut i, "--engine")?.as_str() {
                    "scan" => Engine::Scan,
                    "indexed" => Engine::Indexed,
                    other => return Err(format!("unknown engine '{other}' (scan | indexed)")),
                }
            }
            "--threads" => {
                threads = flag_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads value".to_string())?
            }
            "--demo-size" => {
                demo_size = flag_value(args, &mut i, "--demo-size")?
                    .parse()
                    .map_err(|_| "invalid --demo-size value".to_string())?
            }
            "--bench-json" => bench_json = Some(flag_value(args, &mut i, "--bench-json")?),
            "--queries" => {
                queries = Some(
                    flag_value(args, &mut i, "--queries")?
                        .parse()
                        .map_err(|_| "invalid --queries value".to_string())?,
                )
            }
            "--quick" => quick = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let mut positional = positional.into_iter();
    let source = match source {
        Some(s) => s,
        None => positional
            .next()
            .ok_or_else(|| USAGE.to_string())?
            .to_string(),
    };
    let benchmarking = bench_json.is_some();
    let query = positional.next().map(str::to_string);
    if query.is_none() && !benchmarking {
        return Err(USAGE.to_string());
    }
    let k = positional
        .next()
        .map(|v| v.parse().map_err(|_| format!("invalid k '{v}'")))
        .transpose()?
        .unwrap_or(10);
    let algorithm = positional
        .next()
        .map(str::to_string)
        .unwrap_or_else(|| if benchmarking { "ms" } else { "ensemble" }.to_string());
    if demo_size == 0 {
        demo_size = match (benchmarking, quick) {
            (true, true) => 60,
            (true, false) => 250,
            _ => 200,
        };
    }
    // An explicit --queries wins; --quick only shrinks the default.
    let queries = queries.unwrap_or(if quick { 3 } else { 8 });
    Ok(Options {
        source,
        query,
        k,
        algorithm,
        engine,
        threads: threads.max(1),
        demo_size,
        bench_json,
        quick,
        queries,
    })
}

type Scorer = Box<dyn Fn(&Workflow, &Workflow) -> f64 + Sync>;

/// The pipeline configuration behind an algorithm short-hand, when the
/// algorithm is a single profileable measure.
fn algorithm_config(algorithm: &str) -> Result<Option<SimilarityConfig>, String> {
    match algorithm {
        "ms" => Ok(Some(SimilarityConfig::best_module_sets())),
        "ps" => Ok(Some(SimilarityConfig::best_path_sets())),
        "bw" => Ok(Some(SimilarityConfig::bag_of_words())),
        "bt" => Ok(Some(SimilarityConfig::bag_of_tags())),
        "ensemble" => Ok(None),
        other => Err(format!(
            "unknown algorithm '{other}' (expected ms, ps, bw, bt or ensemble)"
        )),
    }
}

fn scorer(algorithm: &str) -> Result<Scorer, String> {
    match algorithm_config(algorithm)? {
        Some(config) => {
            let m = WorkflowSimilarity::new(config);
            Ok(Box::new(move |a, b| m.similarity(a, b)))
        }
        None => {
            let e = Ensemble::bw_plus_module_sets();
            Ok(Box::new(move |a, b| e.similarity(a, b)))
        }
    }
}

fn print_hits(repository: &Repository, query: &Workflow, hits: &[wf_repo::SearchHit], note: &str) {
    println!(
        "top-{} workflows similar to {} (\"{}\"){note}:",
        hits.len(),
        query.id,
        query.annotations.title.as_deref().unwrap_or("untitled")
    );
    let mut table = TextTable::new(vec!["rank", "id", "score", "title"]);
    for (rank, hit) in hits.iter().enumerate() {
        let title = repository
            .get(&hit.id)
            .and_then(|wf| wf.annotations.title.clone())
            .unwrap_or_default();
        table.row(vec![
            (rank + 1).to_string(),
            hit.id.as_str().to_string(),
            format!("{:.3}", hit.score),
            title,
        ]);
    }
    println!("{}", table.render());
}

fn run_search(options: &Options, repository: &Repository) -> Result<(), String> {
    let query_id = WorkflowId::new(options.query.clone().expect("search mode has a query"));
    let query = repository
        .get(&query_id)
        .ok_or_else(|| format!("query workflow '{query_id}' not found in the corpus"))?
        .clone();
    let config = algorithm_config(&options.algorithm)?;
    match (options.engine, config) {
        (Engine::Indexed, Some(config)) => {
            let corpus = Corpus::build(config, repository.workflows().to_vec());
            let engine = corpus.search_engine().with_threads(options.threads);
            let query_index = corpus
                .index_of(&query_id)
                .expect("query id resolved against the same corpus");
            let (hits, stats) = if options.threads > 1 {
                engine.top_k_parallel_with_stats(query_index, options.k)
            } else {
                engine.top_k_with_stats(query_index, options.k)
            };
            print_hits(
                repository,
                &query,
                &hits,
                &format!(" by {} [indexed]", options.algorithm),
            );
            println!(
                "engine: indexed — scored {} of {} candidates \
                 ({} pruned by bound, {} zero-bound, {} sharing label tokens)",
                stats.scored,
                stats.candidates,
                stats.pruned,
                stats.zero_bound,
                stats.shared_token_candidates
            );
        }
        (engine_kind, config) => {
            if engine_kind == Engine::Indexed && config.is_none() {
                println!(
                    "note: '{}' is not a single profileable measure; using the scan engine",
                    options.algorithm
                );
            }
            let score = scorer(&options.algorithm)?;
            let engine = SearchEngine::new(repository, score).with_threads(options.threads);
            let hits = engine.top_k_parallel(&query, options.k);
            print_hits(
                repository,
                &query,
                &hits,
                &format!(" by {} [scan]", options.algorithm),
            );
        }
    }
    Ok(())
}

fn run_benchmark(options: &Options, repository: &Repository) -> Result<(), String> {
    let path = options.bench_json.as_deref().expect("benchmark mode");
    let config = algorithm_config(&options.algorithm)?.ok_or_else(|| {
        "benchmark mode needs a profileable algorithm (ms, ps, bw, bt)".to_string()
    })?;
    let algorithm_name = config.name();
    let n = repository.len();
    let queries: Vec<usize> = (0..options.queries.min(n)).collect();
    if queries.is_empty() {
        return Err("benchmark needs a non-empty corpus".to_string());
    }

    // Seed scan path: re-derives everything per pair.
    let plain = WorkflowSimilarity::new(config.clone());
    let scan_engine = SearchEngine::new(repository, |a: &Workflow, b: &Workflow| {
        plain.similarity(a, b)
    });
    let scan_started = Instant::now();
    let scan_lists: Vec<_> = queries
        .iter()
        .map(|&q| scan_engine.top_k(&repository.workflows()[q], options.k))
        .collect();
    let scan_ms = scan_started.elapsed().as_secs_f64() * 1e3;
    let scan_comparisons = queries.len() * n.saturating_sub(1);

    // Corpus-resident path: one shared Corpus (profiles + index), prune per
    // query through an engine that borrows the corpus-resident index.
    let build_started = Instant::now();
    let corpus = Corpus::build(config, repository.workflows().to_vec());
    let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
    let indexed_engine = corpus.search_engine();
    let indexed_started = Instant::now();
    let mut stats_total = SearchStats::default();
    let mut indexed_lists = Vec::new();
    for &q in &queries {
        let (hits, stats) = indexed_engine.top_k_with_stats(q, options.k);
        indexed_lists.push(hits);
        stats_total.candidates += stats.candidates;
        stats_total.scored += stats.scored;
        stats_total.pruned += stats.pruned;
        stats_total.zero_bound += stats.zero_bound;
        stats_total.shared_token_candidates += stats.shared_token_candidates;
    }
    let indexed_ms = indexed_started.elapsed().as_secs_f64() * 1e3;

    let identical = scan_lists == indexed_lists;
    // Keep the report valid JSON: a sub-resolution indexed run must not
    // format as the literal `inf`.
    let speedup = scan_ms / indexed_ms.max(1e-6);
    let report = format!(
        "{{\n  \"experiment\": \"retrieval_topk\",\n  \"corpus\": \"{}\",\n  \
         \"corpus_size\": {},\n  \"queries\": {},\n  \"k\": {},\n  \
         \"algorithm\": \"{}\",\n  \"quick\": {},\n  \"engines\": [\n    \
         {{\"engine\": \"scan\", \"wall_ms\": {:.3}, \"comparisons_scored\": {}, \
         \"comparisons_pruned\": 0}},\n    \
         {{\"engine\": \"indexed\", \"wall_ms\": {:.3}, \"build_ms\": {:.3}, \
         \"comparisons_scored\": {}, \"comparisons_pruned\": {}, \
         \"zero_bound_shortcuts\": {}, \"shared_token_candidates\": {}}}\n  ],\n  \
         \"identical_hits\": {},\n  \"speedup_scan_over_indexed\": {:.3}\n}}\n",
        wf_bench::json_escape(&options.source),
        n,
        queries.len(),
        options.k,
        algorithm_name,
        options.quick,
        scan_ms,
        scan_comparisons,
        indexed_ms,
        build_ms,
        stats_total.scored,
        stats_total.pruned + stats_total.zero_bound,
        stats_total.zero_bound,
        stats_total.shared_token_candidates,
        identical,
        speedup,
    );
    std::fs::write(path, &report).map_err(|e| format!("cannot write '{path}': {e}"))?;
    println!(
        "retrieval benchmark ({algorithm_name}, {} workflows, {} queries, top-{}):",
        n,
        queries.len(),
        options.k
    );
    println!("  scan    {scan_ms:>10.1} ms  ({scan_comparisons} comparisons)");
    println!(
        "  indexed {indexed_ms:>10.1} ms  (+{build_ms:.1} ms profile/index build, \
         {} scored / {} pruned)",
        stats_total.scored,
        stats_total.pruned + stats_total.zero_bound
    );
    println!("  speedup {speedup:>10.1} x  -> {path}");
    if !identical {
        return Err("indexed and scan hit lists diverged — this is a bug".to_string());
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args)?;
    let corpus = wf_bench::load_workflows(&options.source, options.demo_size)?;
    let repository = Repository::from_workflows(corpus);
    if options.bench_json.is_some() {
        run_benchmark(&options, &repository)
    } else {
        run_search(&options, &repository)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
