//! Corpus statistics (paper Section 4.1 and the module-count reduction of
//! Section 5.1.4).
//!
//! Prints the aggregate statistics of the synthetic Taverna-like and
//! Galaxy-like corpora, and the effect of the Importance Projection on the
//! average module count (the paper reports a drop from 11.3 to 4.7).
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 1483), `WFSIM_SEED` (default 42).

use wf_bench::{env_param, table::TextTable};
use wf_corpus::{generate_galaxy_corpus, GalaxyCorpusConfig};
use wf_model::CorpusStats;
use wf_repo::{importance_projection, ImportanceConfig, ImportanceScorer};

fn stats_row(table: &mut TextTable, name: &str, stats: &CorpusStats) {
    table.row(vec![
        name.to_string(),
        stats.workflows.to_string(),
        format!("{:.1}", stats.mean_modules),
        format!("{:.1}", stats.mean_links),
        format!("{:.1}%", stats.untagged_fraction * 100.0),
        format!("{:.1}%", stats.undescribed_fraction * 100.0),
    ]);
}

fn main() {
    let size = env_param("WFSIM_CORPUS_SIZE", 1483);
    let seed = env_param("WFSIM_SEED", 42) as u64;

    let taverna = wf_bench::demo_workflows(size, seed);
    let (galaxy, _) = generate_galaxy_corpus(&GalaxyCorpusConfig::default());

    let scorer = ImportanceScorer::new(ImportanceConfig::type_based());
    let projected: Vec<_> = taverna
        .iter()
        .map(|wf| importance_projection(wf, &scorer))
        .collect();

    let mut table = TextTable::new(vec![
        "corpus",
        "workflows",
        "mean modules",
        "mean links",
        "untagged",
        "undescribed",
    ]);
    stats_row(
        &mut table,
        "taverna (np)",
        &CorpusStats::of(&taverna).expect("non-empty"),
    );
    stats_row(
        &mut table,
        "taverna (ip)",
        &CorpusStats::of(&projected).expect("non-empty"),
    );
    stats_row(
        &mut table,
        "galaxy",
        &CorpusStats::of(&galaxy).expect("non-empty"),
    );

    println!("Corpus statistics (paper Section 4.1; module-count reduction of Section 5.1.4)");
    println!("paper reference: 1483 Taverna workflows, ~15% untagged, 11.3 -> 4.7 modules under ip; 139 Galaxy workflows");
    println!();
    println!("{}", table.render());
}
