//! Figure 4: inter-annotator agreement.
//!
//! For every (simulated) expert, the ranking correctness (± standard
//! deviation) and completeness of their individual rankings against the
//! BioConsert consensus are reported.  The paper's finding: most experts
//! agree well with the consensus, with a few outliers.
//!
//! Environment: `WFSIM_CORPUS_SIZE` (default 400), `WFSIM_QUERIES` (default
//! 24), `WFSIM_SEED` (default 42).

use wf_bench::table::{fmt3, TextTable};
use wf_bench::{env_param, RankingExperiment, RankingExperimentConfig};

fn main() {
    let config = RankingExperimentConfig {
        corpus_size: env_param("WFSIM_CORPUS_SIZE", 400),
        queries: env_param("WFSIM_QUERIES", 24),
        candidates_per_query: 10,
        seed: env_param("WFSIM_SEED", 42) as u64,
    };
    println!("Figure 4: per-expert ranking correctness / completeness vs BioConsert consensus");
    println!(
        "setup: {} workflows, {} queries x {} candidates, 15 simulated experts",
        config.corpus_size, config.queries, config.candidates_per_query
    );
    println!();

    let experiment = RankingExperiment::prepare(&config);
    println!(
        "collected ratings: {} over {} pairs (paper: 2424 ratings over 485 pairs)",
        experiment.ratings().len(),
        experiment.ratings().pair_count()
    );
    println!();

    let mut table = TextTable::new(vec![
        "expert",
        "mean correctness",
        "stddev",
        "mean completeness",
        "queries rated",
    ]);
    let mut correctness_sum = 0.0;
    let agreement = experiment.expert_agreement();
    for (expert, summary) in &agreement {
        correctness_sum += summary.mean_correctness;
        table.row(vec![
            expert.clone(),
            fmt3(summary.mean_correctness),
            fmt3(summary.stddev_correctness),
            fmt3(summary.mean_completeness),
            summary.queries.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mean over experts: correctness {:.3} (paper: most experts > 0.6 with a few outliers)",
        correctness_sum / agreement.len().max(1) as f64
    );
}
