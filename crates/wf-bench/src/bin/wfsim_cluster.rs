//! `wfsim_cluster` — a small command-line workflow clustering tool.
//!
//! Usage:
//! ```text
//! wfsim_cluster <corpus.json | --demo> [k] [algorithm] [duplicate-threshold]
//!               [--engine legacy|profiled] [--threads N] [--demo-size N]
//! wfsim_cluster <corpus.json | --demo> --bench-json BENCH_clustering.json
//!               [--quick] [algorithm]
//! ```
//!
//! * `corpus.json` — a JSON array of workflows (the format written by
//!   `wf_model::json::corpus_to_json`); pass `--demo` to cluster a freshly
//!   generated synthetic corpus instead (`--demo-size` workflows).
//! * `k` — number of clusters to cut the dendrogram into (default 10).
//! * `algorithm` — one of `ms`, `ps`, `bw`, `lv`, `mcs`, `ensemble`
//!   (default `ms` = MS_ip_te_pll, the paper's best structural setup).
//! * `duplicate-threshold` — similarity above which a pair is reported as a
//!   near duplicate (default 0.95).
//! * `--engine` — `profiled` (default) builds one shared `Corpus` and fills
//!   the similarity matrix from cached profiles; `legacy` scores through
//!   the per-pair `Measure` trait (the seed path).  Both produce
//!   bit-identical matrices; algorithms without a profiled form (`lv`,
//!   `mcs`, `ensemble`) fall back to `legacy` with a note.
//! * `--bench-json PATH` — benchmark mode: time the matrix build through
//!   both engines and write a machine-readable report (the clustering twin
//!   of `BENCH_retrieval.json`, used by CI to track the perf trajectory);
//!   `--quick` shrinks the corpus for smoke runs.
//!
//! The tool prints every cluster with its medoid (representative workflow)
//! and members, followed by the near-duplicate report — the two repository
//! management tasks the paper's introduction motivates.

use std::process::ExitCode;
use std::time::Instant;

use wf_bench::table::TextTable;
use wf_cluster::{
    duplicate_pairs, hierarchical_clustering, kmedoids, Linkage, PairwiseSimilarities,
};
use wf_model::Workflow;
use wf_sim::{
    Corpus, Ensemble, LabelVectorSimilarity, McsSimilarity, Measure, SimilarityConfig,
    WorkflowSimilarity,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Legacy,
    Profiled,
}

struct Options {
    source: String,
    k: usize,
    algorithm: String,
    threshold: f64,
    engine: Engine,
    threads: usize,
    demo_size: usize,
    bench_json: Option<String>,
    quick: bool,
}

const USAGE: &str =
    "usage: wfsim_cluster <corpus.json | --demo> [k] [algorithm] [duplicate-threshold] \
                      [--engine legacy|profiled] [--threads N] [--demo-size N] \
                      [--bench-json PATH [--quick]]";

fn flag_value(args: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{name} expects a value"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut engine = Engine::Profiled;
    let mut threads = 8usize;
    let mut demo_size = 0usize; // 0 = pick by mode
    let mut bench_json = None;
    let mut quick = false;
    let mut source = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--demo" => source = Some(wf_bench::corpus::DEMO_SOURCE.to_string()),
            "--engine" => {
                engine = match flag_value(args, &mut i, "--engine")?.as_str() {
                    "legacy" => Engine::Legacy,
                    "profiled" => Engine::Profiled,
                    other => return Err(format!("unknown engine '{other}' (legacy | profiled)")),
                }
            }
            "--threads" => {
                threads = flag_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads value".to_string())?
            }
            "--demo-size" => {
                demo_size = flag_value(args, &mut i, "--demo-size")?
                    .parse()
                    .map_err(|_| "invalid --demo-size value".to_string())?
            }
            "--bench-json" => bench_json = Some(flag_value(args, &mut i, "--bench-json")?),
            "--quick" => quick = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let mut positional = positional.into_iter();
    let source = match source {
        Some(s) => s,
        None => positional
            .next()
            .ok_or_else(|| USAGE.to_string())?
            .to_string(),
    };
    let benchmarking = bench_json.is_some();
    // Benchmark mode takes only `[algorithm]` (k and the duplicate
    // threshold play no role in timing the matrix build); interactive mode
    // takes `[k] [algorithm] [duplicate-threshold]`.
    let (k, algorithm, threshold) = if benchmarking {
        let algorithm = positional
            .next()
            .map(str::to_string)
            .unwrap_or_else(|| "ms".to_string());
        (10, algorithm, 0.95)
    } else {
        let k = positional
            .next()
            .map(|v| v.parse().map_err(|_| format!("invalid k '{v}'")))
            .transpose()?
            .unwrap_or(10);
        let algorithm = positional
            .next()
            .map(str::to_string)
            .unwrap_or_else(|| "ms".to_string());
        let threshold: f64 = positional
            .next()
            .map(|v| v.parse().map_err(|_| format!("invalid threshold '{v}'")))
            .transpose()?
            .unwrap_or(0.95);
        (k, algorithm, threshold)
    };
    if demo_size == 0 {
        demo_size = match (benchmarking, quick) {
            (true, true) => 60,
            (true, false) => 250,
            _ => 120,
        };
    }
    Ok(Options {
        source,
        k,
        algorithm,
        threshold,
        engine,
        threads: threads.max(1),
        demo_size,
        bench_json,
        quick,
    })
}

/// The pipeline configuration behind an algorithm short-hand, when the
/// algorithm is a single profileable measure.
fn algorithm_config(algorithm: &str) -> Result<Option<SimilarityConfig>, String> {
    match algorithm {
        "ms" => Ok(Some(SimilarityConfig::best_module_sets())),
        "ps" => Ok(Some(SimilarityConfig::best_path_sets())),
        "bw" => Ok(Some(SimilarityConfig::bag_of_words())),
        "lv" | "mcs" | "ensemble" => Ok(None),
        other => Err(format!(
            "unknown algorithm '{other}' (expected ms, ps, bw, lv, mcs or ensemble)"
        )),
    }
}

fn legacy_measure(algorithm: &str) -> Result<Box<dyn Measure + Sync>, String> {
    match algorithm {
        "ms" => Ok(Box::new(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ))),
        "ps" => Ok(Box::new(WorkflowSimilarity::new(
            SimilarityConfig::best_path_sets(),
        ))),
        "bw" => Ok(Box::new(WorkflowSimilarity::new(
            SimilarityConfig::bag_of_words(),
        ))),
        "lv" => Ok(Box::new(LabelVectorSimilarity::new())),
        "mcs" => Ok(Box::new(McsSimilarity::default())),
        "ensemble" => Ok(Box::new(Ensemble::bw_plus_module_sets())),
        other => Err(format!(
            "unknown algorithm '{other}' (expected ms, ps, bw, lv, mcs or ensemble)"
        )),
    }
}

/// Builds the pairwise matrix through the selected engine, reporting which
/// engine actually ran (profiled falls back for unprofileable algorithms).
fn build_matrix(
    options: &Options,
    workflows: Vec<Workflow>,
) -> Result<(PairwiseSimilarities, &'static str), String> {
    if options.engine == Engine::Profiled {
        match algorithm_config(&options.algorithm)? {
            Some(config) => {
                let corpus = Corpus::build(config, workflows);
                return Ok((
                    PairwiseSimilarities::compute_profiled_parallel(&corpus, options.threads),
                    "profiled",
                ));
            }
            None => println!(
                "note: '{}' has no profiled form; using the legacy engine",
                options.algorithm
            ),
        }
    }
    let measure = legacy_measure(&options.algorithm)?;
    Ok((
        PairwiseSimilarities::compute_parallel(&workflows, measure.as_ref(), options.threads),
        "legacy",
    ))
}

fn run_clustering(options: &Options, workflows: Vec<Workflow>) -> Result<(), String> {
    println!(
        "clustering {} workflows with {} into {} clusters (average linkage)",
        workflows.len(),
        options.algorithm,
        options.k
    );
    let (matrix, engine) = build_matrix(options, workflows)?;
    println!("similarity matrix built by the {engine} engine");
    let clusters = hierarchical_clustering(&matrix, Linkage::Average).cut_k(options.k);
    let pam = kmedoids(&matrix, options.k, 30);

    let mut table = TextTable::new(vec!["cluster", "size", "medoid", "members (first 6)"]);
    for (cluster, members) in clusters.groups().iter().enumerate() {
        // Representative: the k-medoids medoid of the cluster containing
        // this group's first member (clusters of the two algorithms need
        // not coincide, so fall back to the group's own most central item).
        let medoid = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da: f64 = members.iter().map(|&m| matrix.distance(a, m)).sum();
                let db: f64 = members.iter().map(|&m| matrix.distance(b, m)).sum();
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("clusters are never empty");
        let member_names: Vec<String> = members
            .iter()
            .take(6)
            .map(|&m| matrix.id(m).as_str().to_string())
            .collect();
        table.row(vec![
            cluster.to_string(),
            members.len().to_string(),
            matrix.id(medoid).as_str().to_string(),
            member_names.join(", "),
        ]);
    }
    println!("{}", table.render());
    println!(
        "k-medoids cross-check: {} clusters, total within-cluster dissimilarity {:.2}",
        pam.clustering.cluster_count(),
        pam.cost
    );
    println!();

    let duplicates = duplicate_pairs(&matrix, options.threshold);
    println!(
        "near-duplicate pairs (similarity >= {}): {}",
        options.threshold,
        duplicates.len()
    );
    for pair in duplicates.iter().take(15) {
        println!(
            "  {} ~ {} ({:.3})",
            matrix.id(pair.first).as_str(),
            matrix.id(pair.second).as_str(),
            pair.similarity
        );
    }
    Ok(())
}

fn run_benchmark(options: &Options, workflows: Vec<Workflow>) -> Result<(), String> {
    let path = options.bench_json.as_deref().expect("benchmark mode");
    let config = algorithm_config(&options.algorithm)?
        .ok_or_else(|| "benchmark mode needs a profileable algorithm (ms, ps, bw)".to_string())?;
    let algorithm_name = config.name();
    let n = workflows.len();
    if n == 0 {
        return Err("benchmark needs a non-empty corpus".to_string());
    }
    let comparisons = n * n.saturating_sub(1) / 2;

    // Seed path: every cell re-derives projections, labels and token sets.
    let plain = WorkflowSimilarity::new(config.clone());
    let legacy_started = Instant::now();
    let legacy = PairwiseSimilarities::compute_parallel(&workflows, &plain, options.threads);
    let legacy_ms = legacy_started.elapsed().as_secs_f64() * 1e3;

    // Corpus-resident path: profile once, fill the matrix from the cache.
    let build_started = Instant::now();
    let corpus = Corpus::build(config, workflows);
    let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
    let profiled_started = Instant::now();
    let profiled = PairwiseSimilarities::compute_profiled_parallel(&corpus, options.threads);
    let profiled_ms = profiled_started.elapsed().as_secs_f64() * 1e3;

    let identical = legacy == profiled;
    // Keep the report valid JSON: a sub-resolution profiled run must not
    // format as the literal `inf`.
    let speedup = legacy_ms / profiled_ms.max(1e-6);
    let report = format!(
        "{{\n  \"experiment\": \"clustering_matrix\",\n  \"corpus\": \"{}\",\n  \
         \"corpus_size\": {},\n  \"matrix_cells\": {},\n  \"threads\": {},\n  \
         \"algorithm\": \"{}\",\n  \"quick\": {},\n  \"engines\": [\n    \
         {{\"engine\": \"legacy\", \"wall_ms\": {:.3}, \"comparisons_scored\": {}}},\n    \
         {{\"engine\": \"profiled\", \"wall_ms\": {:.3}, \"build_ms\": {:.3}, \
         \"comparisons_scored\": {}}}\n  ],\n  \
         \"identical_matrix\": {},\n  \"speedup_legacy_over_profiled\": {:.3}\n}}\n",
        wf_bench::json_escape(&options.source),
        n,
        comparisons,
        options.threads,
        algorithm_name,
        options.quick,
        legacy_ms,
        comparisons,
        profiled_ms,
        build_ms,
        comparisons,
        identical,
        speedup,
    );
    std::fs::write(path, &report).map_err(|e| format!("cannot write '{path}': {e}"))?;
    println!(
        "clustering-matrix benchmark ({algorithm_name}, {n} workflows, {comparisons} pairs, \
         {} threads):",
        options.threads
    );
    println!("  legacy   {legacy_ms:>10.1} ms");
    println!("  profiled {profiled_ms:>10.1} ms  (+{build_ms:.1} ms corpus build)");
    println!("  speedup  {speedup:>10.1} x  -> {path}");
    if !identical {
        return Err("profiled and legacy matrices diverged — this is a bug".to_string());
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_options(&args)?;
    let workflows = wf_bench::load_workflows(&options.source, options.demo_size)?;
    if workflows.is_empty() {
        return Err("the corpus contains no workflows".to_string());
    }
    if options.bench_json.is_some() {
        run_benchmark(&options, workflows)
    } else {
        run_clustering(&options, workflows)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
