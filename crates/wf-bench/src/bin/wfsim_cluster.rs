//! `wfsim_cluster` — a small command-line workflow clustering tool.
//!
//! Usage:
//! ```text
//! wfsim_cluster <corpus.json | --demo> [k] [algorithm] [duplicate-threshold]
//! ```
//!
//! * `corpus.json` — a JSON array of workflows (the format written by
//!   `wf_model::json::corpus_to_json`); pass `--demo` to cluster a freshly
//!   generated synthetic corpus instead.
//! * `k` — number of clusters to cut the dendrogram into (default 10).
//! * `algorithm` — one of `ms`, `ps`, `bw`, `lv`, `mcs`, `ensemble`
//!   (default `ms` = MS_ip_te_pll, the paper's best structural setup).
//! * `duplicate-threshold` — similarity above which a pair is reported as a
//!   near duplicate (default 0.95).
//!
//! The tool prints every cluster with its medoid (representative workflow)
//! and members, followed by the near-duplicate report — the two repository
//! management tasks the paper's introduction motivates.

use std::process::ExitCode;

use wf_bench::table::TextTable;
use wf_cluster::{
    duplicate_pairs, hierarchical_clustering, kmedoids, Linkage, PairwiseSimilarities,
};
use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_model::{json, Workflow};
use wf_sim::{
    Ensemble, LabelVectorSimilarity, McsSimilarity, Measure, SimilarityConfig, WorkflowSimilarity,
};

fn load_corpus(source: &str) -> Result<Vec<Workflow>, String> {
    if source == "--demo" {
        let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(120, 7));
        return Ok(corpus);
    }
    let text = std::fs::read_to_string(source)
        .map_err(|e| format!("cannot read corpus file '{source}': {e}"))?;
    json::corpus_from_json(&text).map_err(|e| format!("cannot parse corpus '{source}': {e}"))
}

fn measure(algorithm: &str) -> Result<Box<dyn Measure + Sync>, String> {
    match algorithm {
        "ms" => Ok(Box::new(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ))),
        "ps" => Ok(Box::new(WorkflowSimilarity::new(
            SimilarityConfig::best_path_sets(),
        ))),
        "bw" => Ok(Box::new(WorkflowSimilarity::new(
            SimilarityConfig::bag_of_words(),
        ))),
        "lv" => Ok(Box::new(LabelVectorSimilarity::new())),
        "mcs" => Ok(Box::new(McsSimilarity::default())),
        "ensemble" => Ok(Box::new(Ensemble::bw_plus_module_sets())),
        other => Err(format!(
            "unknown algorithm '{other}' (expected ms, ps, bw, lv, mcs or ensemble)"
        )),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(
            "usage: wfsim_cluster <corpus.json | --demo> [k] [algorithm] [duplicate-threshold]"
                .to_string(),
        );
    }
    let workflows = load_corpus(&args[0])?;
    if workflows.is_empty() {
        return Err("the corpus contains no workflows".to_string());
    }
    let k: usize = args
        .get(1)
        .map(|v| v.parse().map_err(|_| format!("invalid k '{v}'")))
        .transpose()?
        .unwrap_or(10);
    let algorithm = args.get(2).map(String::as_str).unwrap_or("ms");
    let threshold: f64 = args
        .get(3)
        .map(|v| v.parse().map_err(|_| format!("invalid threshold '{v}'")))
        .transpose()?
        .unwrap_or(0.95);
    let measure = measure(algorithm)?;

    println!(
        "clustering {} workflows with {algorithm} into {k} clusters (average linkage)",
        workflows.len()
    );
    let matrix = PairwiseSimilarities::compute_parallel(&workflows, measure.as_ref(), 8);
    let clusters = hierarchical_clustering(&matrix, Linkage::Average).cut_k(k);
    let pam = kmedoids(&matrix, k, 30);

    let mut table = TextTable::new(vec!["cluster", "size", "medoid", "members (first 6)"]);
    for (cluster, members) in clusters.groups().iter().enumerate() {
        // Representative: the k-medoids medoid of the cluster containing
        // this group's first member (clusters of the two algorithms need
        // not coincide, so fall back to the group's own most central item).
        let medoid = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da: f64 = members.iter().map(|&m| matrix.distance(a, m)).sum();
                let db: f64 = members.iter().map(|&m| matrix.distance(b, m)).sum();
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("clusters are never empty");
        let member_names: Vec<String> = members
            .iter()
            .take(6)
            .map(|&m| matrix.id(m).as_str().to_string())
            .collect();
        table.row(vec![
            cluster.to_string(),
            members.len().to_string(),
            matrix.id(medoid).as_str().to_string(),
            member_names.join(", "),
        ]);
    }
    println!("{}", table.render());
    println!(
        "k-medoids cross-check: {} clusters, total within-cluster dissimilarity {:.2}",
        pam.clustering.cluster_count(),
        pam.cost
    );
    println!();

    let duplicates = duplicate_pairs(&matrix, threshold);
    println!(
        "near-duplicate pairs (similarity >= {threshold}): {}",
        duplicates.len()
    );
    for pair in duplicates.iter().take(15) {
        println!(
            "  {} ~ {} ({:.3})",
            matrix.id(pair.first).as_str(),
            matrix.id(pair.second).as_str(),
            pair.similarity
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
