//! # wf-bench — the experiment harness
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! (Section 5) on the synthetic corpora.  Each figure has a dedicated binary
//! in `src/bin/` (`fig04_annotator_agreement` … `fig12_galaxy_ranking`,
//! plus `corpus_stats`), the ablation/extension experiments have their own
//! binaries (`ablation_importance`, `ablation_ensembles`,
//! `ablation_clustering`, `extended_measures_ranking`,
//! `significance_report`), and two small CLIs (`wfsim_search`,
//! `wfsim_cluster`) expose search and clustering over a JSON corpus.  The
//! Criterion micro-benchmarks in `benches/` cover the runtime claims
//! (pair-count reduction, Importance Projection speedup, GED budgets,
//! clustering and mining costs).  The repository README.md explains how to
//! run every experiment binary.
//!
//! The shared machinery lives here:
//!
//! * [`RankingExperiment`] — the paper's first experiment: query workflows
//!   with stratified candidate lists, a simulated expert panel, BioConsert
//!   consensus rankings, and ranking-correctness/completeness evaluation of
//!   arbitrary similarity algorithms.
//! * [`RetrievalExperiment`] — the paper's second experiment: top-10
//!   retrieval over the whole repository, expert ratings of the pooled
//!   result lists, and precision@k curves.
//! * [`table`] — plain-text table formatting for the binaries.
//! * [`corpus`] — shared demo-corpus construction and the file-or-`--demo`
//!   loader, returning raw workflows or a fully built
//!   [`wf_sim::Corpus`].

#![deny(unsafe_code)]

pub mod corpus;
pub mod ranking;
pub mod retrieval;
pub mod table;

pub use corpus::{demo_workflows, demo_workflows_with_meta, load_corpus, load_workflows};
pub use ranking::{AlgorithmScore, RankingExperiment, RankingExperimentConfig};
pub use retrieval::{RetrievalExperiment, RetrievalExperimentConfig};

use wf_model::Workflow;

/// Scoring function of a [`NamedAlgorithm`]: returns `None` when the
/// algorithm abstains on a pair it cannot compare.
pub type ScoreFn<'a> = Box<dyn Fn(&Workflow, &Workflow) -> Option<f64> + Sync + 'a>;

/// A similarity algorithm under evaluation: a name plus a scoring function
/// that may abstain (`None`) on pairs it cannot compare.
pub struct NamedAlgorithm<'a> {
    /// Display name (paper notation, e.g. `MS_ip_te_pll`).
    pub name: String,
    /// The scoring function.
    pub score: ScoreFn<'a>,
}

impl<'a> NamedAlgorithm<'a> {
    /// Wraps a configured [`wf_sim::WorkflowSimilarity`] measure.
    pub fn from_measure(measure: wf_sim::WorkflowSimilarity) -> Self {
        NamedAlgorithm {
            name: measure.name(),
            score: Box::new(move |a, b| measure.similarity_opt(a, b)),
        }
    }

    /// Wraps a configured ensemble.
    pub fn from_ensemble(ensemble: wf_sim::Ensemble) -> Self {
        NamedAlgorithm {
            name: ensemble.name(),
            score: Box::new(move |a, b| ensemble.similarity_opt(a, b)),
        }
    }

    /// Wraps an arbitrary closure.
    pub fn from_fn(
        name: impl Into<String>,
        score: impl Fn(&Workflow, &Workflow) -> Option<f64> + Sync + 'a,
    ) -> Self {
        NamedAlgorithm {
            name: name.into(),
            score: Box::new(score),
        }
    }
}

/// Escapes a string for embedding in a JSON string literal — shared by the
/// `--bench-json` report writers of the CLI binaries.
pub fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reads a `usize` experiment parameter from the environment, falling back
/// to a default.  The figure binaries use this for `WFSIM_CORPUS_SIZE`,
/// `WFSIM_QUERIES` and `WFSIM_SEED` so that experiments can be scaled up to
/// the paper's full corpus (1483 workflows) or down for a smoke run without
/// recompiling.
pub fn env_param(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_sim::{SimilarityConfig, WorkflowSimilarity};

    #[test]
    fn env_param_falls_back_to_default() {
        assert_eq!(env_param("WFSIM_DOES_NOT_EXIST", 7), 7);
        std::env::set_var("WFSIM_TEST_PARAM", "42");
        assert_eq!(env_param("WFSIM_TEST_PARAM", 7), 42);
        std::env::set_var("WFSIM_TEST_PARAM", "not-a-number");
        assert_eq!(env_param("WFSIM_TEST_PARAM", 7), 7);
    }

    #[test]
    fn named_algorithm_wrappers_expose_names() {
        let a = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ));
        assert_eq!(a.name, "MS_ip_te_pll");
        let e = NamedAlgorithm::from_ensemble(wf_sim::Ensemble::bw_plus_path_sets());
        assert_eq!(e.name, "BW+PS_ip_te_pll");
        let f = NamedAlgorithm::from_fn("constant", |_, _| Some(0.5));
        assert_eq!(f.name, "constant");
    }
}
