//! The workflow *retrieval* experiment (paper Section 4.2, experiment 2, and
//! Section 5.2).
//!
//! Selected algorithms each retrieve the top-k most similar workflows for a
//! set of query workflows from the whole repository.  The pooled result
//! lists are rated by the expert panel; retrieval quality is then reported
//! as mean precision@k against the median expert rating under the three
//! relevance thresholds of Figures 10 and 11.

use std::collections::BTreeSet;

use wf_corpus::{
    generate_taverna_corpus, select_queries, CorpusMeta, ExpertPanel, ExpertPanelConfig,
    TavernaCorpusConfig,
};
use wf_gold::graded::{likert_gain, mean_average_precision, mean_ndcg};
use wf_gold::precision::{mean_precision_at_k, precision_curve};
use wf_gold::{RatingCorpus, RelevanceThreshold};
use wf_model::WorkflowId;
use wf_repo::{Repository, SearchEngine};

use crate::NamedAlgorithm;

/// Configuration of the retrieval experiment.
#[derive(Debug, Clone)]
pub struct RetrievalExperimentConfig {
    /// Size of the generated corpus searched over.
    pub corpus_size: usize,
    /// Number of query workflows (the paper uses 8).
    pub queries: usize,
    /// Result list depth (the paper evaluates the top 10).
    pub top_k: usize,
    /// Number of worker threads for scoring.
    pub threads: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for RetrievalExperimentConfig {
    fn default() -> Self {
        RetrievalExperimentConfig {
            corpus_size: 500,
            queries: 8,
            top_k: 10,
            threads: 8,
            seed: 42,
        }
    }
}

impl RetrievalExperimentConfig {
    /// A reduced setting for unit tests.
    pub fn quick() -> Self {
        RetrievalExperimentConfig {
            corpus_size: 80,
            queries: 3,
            top_k: 5,
            threads: 4,
            seed: 42,
        }
    }
}

/// The prepared retrieval experiment.
pub struct RetrievalExperiment {
    config: RetrievalExperimentConfig,
    repository: Repository,
    meta: CorpusMeta,
    queries: Vec<WorkflowId>,
    panel: ExpertPanel,
}

impl RetrievalExperiment {
    /// Generates the corpus and selects the query workflows.
    pub fn prepare(config: &RetrievalExperimentConfig) -> Self {
        let (corpus, meta) =
            generate_taverna_corpus(&TavernaCorpusConfig::small(config.corpus_size, config.seed));
        let repository = Repository::from_workflows(corpus);
        let queries = select_queries(&meta, config.queries, 3, config.seed + 7);
        let panel = ExpertPanel::new(ExpertPanelConfig {
            seed: config.seed + 2000,
            ..ExpertPanelConfig::default()
        });
        RetrievalExperiment {
            config: config.clone(),
            repository,
            meta,
            queries,
            panel,
        }
    }

    /// The repository searched over.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The latent corpus metadata.
    pub fn meta(&self) -> &CorpusMeta {
        &self.meta
    }

    /// The query workflow ids.
    pub fn queries(&self) -> &[WorkflowId] {
        &self.queries
    }

    /// Runs one algorithm's top-k retrieval for every query.
    pub fn result_lists(
        &self,
        algorithm: &NamedAlgorithm<'_>,
    ) -> Vec<(WorkflowId, Vec<WorkflowId>)> {
        let score = &algorithm.score;
        let engine = SearchEngine::new(
            &self.repository,
            move |a: &wf_model::Workflow, b: &wf_model::Workflow| score(a, b).unwrap_or(0.0),
        )
        .with_threads(self.config.threads);
        self.queries
            .iter()
            .map(|q| {
                let query_wf = self.repository.get(q).expect("query exists");
                let hits = engine.top_k_parallel(query_wf, self.config.top_k);
                (q.clone(), hits.into_iter().map(|h| h.id).collect())
            })
            .collect()
    }

    /// Rates the pooled result lists with the expert panel — the paper's
    /// second rating round, which "completes" the ratings for every workflow
    /// any algorithm returned.
    pub fn rate_results(
        &self,
        result_lists: &[Vec<(WorkflowId, Vec<WorkflowId>)>],
    ) -> RatingCorpus {
        let mut pairs: BTreeSet<(WorkflowId, WorkflowId)> = BTreeSet::new();
        for lists in result_lists {
            for (query, results) in lists {
                for r in results {
                    pairs.insert((query.clone(), r.clone()));
                }
            }
        }
        let pairs: Vec<(WorkflowId, WorkflowId)> = pairs.into_iter().collect();
        self.panel.rate_pairs(&self.meta, &pairs)
    }

    /// Mean precision@k curve (k = 1 .. top_k) of one algorithm's result
    /// lists under a relevance threshold, judged by the median expert
    /// rating in `ratings`.
    pub fn mean_precision(
        &self,
        result_lists: &[(WorkflowId, Vec<WorkflowId>)],
        ratings: &RatingCorpus,
        threshold: RelevanceThreshold,
    ) -> Vec<f64> {
        let curves: Vec<Vec<f64>> = result_lists
            .iter()
            .map(|(query, results)| {
                precision_curve(
                    results,
                    |candidate| {
                        threshold.is_relevant(ratings.median(query.as_str(), candidate.as_str()))
                    },
                    self.config.top_k,
                )
            })
            .collect();
        mean_precision_at_k(&curves)
    }

    /// Mean nDCG@k of one algorithm's result lists, using the median expert
    /// Likert rating as the graded gain (an extension beyond the paper's
    /// precision@k, see `wf_gold::graded`).
    pub fn mean_ndcg(
        &self,
        result_lists: &[(WorkflowId, Vec<WorkflowId>)],
        ratings: &RatingCorpus,
        k: usize,
    ) -> f64 {
        let gains: Vec<Vec<f64>> = result_lists
            .iter()
            .map(|(query, results)| {
                results
                    .iter()
                    .map(|r| likert_gain(ratings.median(query.as_str(), r.as_str())))
                    .collect()
            })
            .collect();
        mean_ndcg(&gains, k)
    }

    /// Mean average precision (MAP@k) of one algorithm's result lists under
    /// a relevance threshold.
    pub fn mean_average_precision(
        &self,
        result_lists: &[(WorkflowId, Vec<WorkflowId>)],
        ratings: &RatingCorpus,
        threshold: RelevanceThreshold,
        k: usize,
    ) -> f64 {
        let relevance: Vec<Vec<bool>> = result_lists
            .iter()
            .map(|(query, results)| {
                results
                    .iter()
                    .map(|r| threshold.is_relevant(ratings.median(query.as_str(), r.as_str())))
                    .collect()
            })
            .collect();
        mean_average_precision(&relevance, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_sim::{SimilarityConfig, WorkflowSimilarity};

    fn experiment() -> RetrievalExperiment {
        RetrievalExperiment::prepare(&RetrievalExperimentConfig::quick())
    }

    #[test]
    fn preparation_and_result_lists() {
        let exp = experiment();
        assert_eq!(exp.queries().len(), 3);
        assert_eq!(exp.repository().len(), 80);
        let ms = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ));
        let lists = exp.result_lists(&ms);
        assert_eq!(lists.len(), 3);
        for (query, results) in &lists {
            assert_eq!(results.len(), 5);
            assert!(
                !results.contains(query),
                "the query itself is never returned"
            );
        }
    }

    #[test]
    fn rating_and_precision_pipeline() {
        let exp = experiment();
        let ms = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ));
        let lists = exp.result_lists(&ms);
        let ratings = exp.rate_results(std::slice::from_ref(&lists));
        assert!(!ratings.is_empty());
        let curve = exp.mean_precision(&lists, &ratings, RelevanceThreshold::Related);
        assert_eq!(curve.len(), 5);
        for p in &curve {
            assert!((0.0..=1.0).contains(p));
        }
        // A real measure on a family-structured corpus finds related
        // workflows early: precision@1 at the weakest threshold is high.
        assert!(
            curve[0] >= 0.3,
            "precision@1 for MS_ip_te_pll is implausibly low: {}",
            curve[0]
        );
    }

    #[test]
    fn stricter_thresholds_never_increase_precision() {
        let exp = experiment();
        let bw =
            NamedAlgorithm::from_measure(WorkflowSimilarity::new(SimilarityConfig::bag_of_words()));
        let lists = exp.result_lists(&bw);
        let ratings = exp.rate_results(std::slice::from_ref(&lists));
        let related = exp.mean_precision(&lists, &ratings, RelevanceThreshold::Related);
        let similar = exp.mean_precision(&lists, &ratings, RelevanceThreshold::Similar);
        let very = exp.mean_precision(&lists, &ratings, RelevanceThreshold::VerySimilar);
        for k in 0..related.len() {
            assert!(related[k] + 1e-9 >= similar[k]);
            assert!(similar[k] + 1e-9 >= very[k]);
        }
    }

    #[test]
    fn graded_metrics_are_bounded_and_consistent_with_precision() {
        let exp = experiment();
        let ms = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ));
        let lists = exp.result_lists(&ms);
        let ratings = exp.rate_results(std::slice::from_ref(&lists));
        let ndcg = exp.mean_ndcg(&lists, &ratings, 5);
        let map = exp.mean_average_precision(&lists, &ratings, RelevanceThreshold::Related, 5);
        assert!((0.0..=1.0).contains(&ndcg), "nDCG out of range: {ndcg}");
        assert!((0.0..=1.0).contains(&map), "MAP out of range: {map}");
        // If every retrieved workflow were irrelevant, MAP would be 0; the
        // structural measure on a family corpus does better than that.
        assert!(map > 0.0);
    }

    #[test]
    fn random_algorithm_is_beaten_by_an_informed_one() {
        let exp = experiment();
        let ms = NamedAlgorithm::from_measure(WorkflowSimilarity::new(
            SimilarityConfig::best_module_sets(),
        ));
        // "Random" scores derived deterministically from ids so the test is
        // stable: similarity = hash-ish of the candidate id.
        let random = NamedAlgorithm::from_fn("random", |_, b| {
            let h = b.id.as_str().bytes().map(|x| x as u64).sum::<u64>() % 1000;
            Some(h as f64 / 1000.0)
        });
        let ms_lists = exp.result_lists(&ms);
        let random_lists = exp.result_lists(&random);
        let ratings = exp.rate_results(&[ms_lists.clone(), random_lists.clone()]);
        let ms_curve = exp.mean_precision(&ms_lists, &ratings, RelevanceThreshold::Related);
        let random_curve = exp.mean_precision(&random_lists, &ratings, RelevanceThreshold::Related);
        assert!(
            ms_curve[4] > random_curve[4],
            "informed {} vs random {}",
            ms_curve[4],
            random_curve[4]
        );
    }
}
