//! Plain-text table formatting for the experiment binaries.
//!
//! The figure binaries print their data as aligned text tables (one row per
//! algorithm or per k) so that the numbers can be diffed against
//! experiment reports and re-plotted externally if desired.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are filled with empty strings, extra
    /// cells are kept (the column count grows).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three decimals (the precision the paper reports).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a precision curve as `k=1 .. k=n` cells.
pub fn curve_cells(curve: &[f64]) -> Vec<String> {
    curve.iter().map(|p| fmt3(*p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["algorithm", "correctness"]);
        t.row(vec!["BW", "0.513"]);
        t.row(vec!["MS_ip_te_pll", "0.622"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("algorithm"));
        assert!(lines[2].starts_with("BW"));
        assert!(lines[3].starts_with("MS_ip_te_pll"));
        // Columns align: "0.513" and "0.622" start at the same offset.
        let off2 = lines[2].find("0.513").unwrap();
        let off3 = lines[3].find("0.622").unwrap();
        assert_eq!(off2, off3);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1", "2", "3"]);
        t.row(Vec::<String>::new());
        let rendered = t.render();
        assert!(rendered.contains('3'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.51349), "0.513");
        assert_eq!(curve_cells(&[1.0, 0.5]), vec!["1.000", "0.500"]);
    }
}
