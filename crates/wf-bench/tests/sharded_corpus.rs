//! The sharded-service equivalence and stress harness.
//!
//! A `ShardedCorpus` is only allowed to be *partitioned* and *concurrent*,
//! never *different*: scatter-gather top-k must be bit-identical — ids,
//! scores, tie order — to the single-corpus `IndexedSearchEngine` for every
//! shard count and module comparison scheme; arbitrary `add` / `remove` /
//! `search` / `search_batch` interleavings must keep answering exactly like
//! a from-scratch single corpus rebuilt after each step; and a
//! `CorpusService` racing real churn threads must never surface a workflow
//! that was removed before the query began.

use std::collections::BTreeSet;
use std::sync::Mutex;

use proptest::prelude::*;
use wf_bench::demo_workflows;
use wf_model::{Workflow, WorkflowId};
use wf_repo::{CancelToken, PreselectionStrategy};
use wf_sim::config::Preprocessing;
use wf_sim::{
    Corpus, CorpusService, MeasureKind, ModuleComparisonScheme, SearchParallelism, ShardPartition,
    ShardedCorpus, SimilarityConfig,
};

fn six_schemes() -> Vec<ModuleComparisonScheme> {
    vec![
        ModuleComparisonScheme::pw0(),
        ModuleComparisonScheme::pw3(),
        ModuleComparisonScheme::pll(),
        ModuleComparisonScheme::plm(),
        ModuleComparisonScheme::gw1(),
        ModuleComparisonScheme::gll(),
    ]
}

fn scheme_config(scheme: ModuleComparisonScheme) -> SimilarityConfig {
    SimilarityConfig::new(
        MeasureKind::ModuleSets,
        scheme,
        PreselectionStrategy::TypeEquivalence,
        Preprocessing::ImportanceProjection,
    )
}

/// The acceptance-criteria equivalence: sharded scatter-gather top-k over
/// shard counts {1, 2, 4, 8} is bit-identical to the single-corpus indexed
/// engine for all six module comparison schemes, tie order included.
#[test]
fn sharded_topk_is_bit_identical_for_all_schemes_and_shard_counts() {
    let workflows = demo_workflows(40, 17);
    for scheme in six_schemes() {
        let config = scheme_config(scheme);
        let name = config.name();
        let single = Corpus::build(config.clone(), workflows.clone());
        let engine = single.search_engine();
        for shards in [1usize, 2, 4, 8] {
            let sharded = ShardedCorpus::build(config.clone(), shards, workflows.clone());
            assert_eq!(sharded.shard_count(), shards);
            for (qi, id) in single.ids().iter().enumerate().step_by(4) {
                for k in [1usize, 10] {
                    let expected = engine.top_k(qi, k);
                    let got = sharded.search(id, k).expect("query is resident");
                    assert_eq!(got, expected, "{name}: {shards} shards, query {id}, k {k}");
                }
            }
        }
    }
}

/// The same acceptance criterion for the *racing* scatter-gather: shard
/// workers draining their cursors in parallel against the shared
/// threshold must stay bit-identical to the single-corpus indexed engine
/// — ids, scores, tie order — for every shard count and scheme.  Pruning
/// is strictly below a floor that is always a true worst-of-k, so thread
/// interleaving can change work done, never results.
#[test]
fn racing_topk_is_bit_identical_for_all_schemes_and_shard_counts() {
    let workflows = demo_workflows(40, 17);
    for scheme in six_schemes() {
        let config = scheme_config(scheme);
        let name = config.name();
        let single = Corpus::build(config.clone(), workflows.clone());
        let engine = single.search_engine();
        for shards in [1usize, 2, 4, 8] {
            let racing = ShardedCorpus::build(config.clone(), shards, workflows.clone())
                .with_parallelism(SearchParallelism::racing_per_shard());
            for (qi, id) in single.ids().iter().enumerate().step_by(4) {
                for k in [1usize, 10] {
                    let expected = engine.top_k(qi, k);
                    let got = racing.search(id, k).expect("query is resident");
                    assert_eq!(
                        got.len(),
                        expected.len(),
                        "{name}: {shards} shards racing, query {id}, k {k}"
                    );
                    for (g, e) in got.iter().zip(&expected) {
                        assert_eq!(g.id, e.id, "{name}: {shards} shards racing, query {id}");
                        assert_eq!(g.score.to_bits(), e.score.to_bits());
                    }
                }
            }
        }
    }
}

/// The global-frontier guarantee behind the scaling curve: splitting the
/// corpus must not multiply scoring work.  One shared best-bound frontier
/// scores (nearly) the same candidate set at 8 shards as at 1 — only
/// cross-shard bound ties may reorder, so the budget is a tight 1.2×.
#[test]
fn sharding_does_not_inflate_scored_comparisons() {
    let workflows = demo_workflows(200, 23);
    let config = SimilarityConfig::best_module_sets();
    let queries: Vec<WorkflowId> = workflows.iter().map(|w| w.id.clone()).step_by(7).collect();
    let scored_at = |shards: usize| -> u64 {
        let sharded = ShardedCorpus::build(config.clone(), shards, workflows.clone());
        queries
            .iter()
            .map(|id| {
                let (_, stats) = sharded.search_with_stats(id, 10).expect("resident");
                stats.scored as u64
            })
            .sum()
    };
    let baseline = scored_at(1);
    assert!(baseline > 0, "queries must do real scoring work");
    for shards in [2usize, 4, 8] {
        let scored = scored_at(shards);
        assert!(
            scored as f64 <= 1.2 * baseline as f64,
            "{shards} shards scored {scored} candidates vs {baseline} at 1 shard"
        );
    }
}

/// Batched queries are individually bit-identical to single searches — and
/// therefore to the single-corpus engine — regardless of worker count.
#[test]
fn batch_queries_match_single_queries_under_parallel_fanout() {
    let workflows = demo_workflows(60, 19);
    let config = SimilarityConfig::best_module_sets();
    let single = Corpus::build(config.clone(), workflows.clone());
    let engine = single.search_engine();
    let sharded = ShardedCorpus::build(config, 4, workflows);
    let queries: Vec<WorkflowId> = single.ids().to_vec();
    for threads in [1usize, 4, 9] {
        let batch = sharded.search_batch(&queries, 10, threads);
        for (qi, (id, hits)) in queries.iter().zip(&batch).enumerate() {
            assert_eq!(
                hits.as_deref().expect("resident"),
                engine.top_k(qi, 10),
                "threads {threads}, query {id}"
            );
        }
    }
}

/// One churn step of the interleaving stress: mirrors the ops the service
/// will see in production (uploads, deletions, replacements).
fn apply_op(sharded: &mut ShardedCorpus, op: u8, pick: usize, extra: &[Workflow], step: usize) {
    match op {
        0 if !sharded.is_empty() => {
            let ids = sharded.ids();
            let id = ids[pick % ids.len()].clone();
            assert!(sharded.remove(&id).is_some());
        }
        1 => {
            let mut wf = extra[pick % extra.len()].clone();
            wf.id = format!("churn-{step}").into();
            sharded.add(wf);
        }
        _ if !sharded.is_empty() => {
            // Replace a resident with a different structure, same id.
            let ids = sharded.ids();
            let id = ids[pick % ids.len()].clone();
            let mut wf = extra[pick % extra.len()].clone();
            wf.id = id;
            sharded.add(wf);
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random interleavings of add / remove / search / search_batch: after
    /// every mutation, the sharded corpus must answer exactly like a
    /// single corpus rebuilt from scratch over the surviving workflows.
    #[test]
    fn churned_sharded_corpus_equals_a_from_scratch_rebuild_after_each_step(
        size in 12usize..=30,
        shards in 1usize..=5,
        seed in 0u64..10_000,
        ops in proptest::collection::vec((0u8..=3, 0usize..1000), 4..10),
        k in 1usize..=8,
    ) {
        let initial = demo_workflows(size, seed);
        let extra = demo_workflows(12, seed ^ 0xfeed);
        let config = SimilarityConfig::best_module_sets();
        let partition = if seed % 2 == 0 { ShardPartition::HashId } else { ShardPartition::RoundRobin };
        let mut sharded = ShardedCorpus::build_with(config.clone(), shards, partition, initial);
        for (step, (op, pick)) in ops.into_iter().enumerate() {
            let searching = op == 3;
            if !searching {
                apply_op(&mut sharded, op, pick, &extra, step);
            }
            // Rebuild the reference single corpus from the survivors after
            // *every* step and compare answers.
            let survivors: Vec<Workflow> = sharded
                .ids()
                .iter()
                .map(|id| sharded.get(id).unwrap().clone())
                .collect();
            let rebuilt = Corpus::build(config.clone(), survivors);
            prop_assert_eq!(sharded.len(), rebuilt.len());
            if rebuilt.is_empty() {
                continue;
            }
            if searching {
                // Exercise the batch path on a slice of resident queries.
                let queries: Vec<WorkflowId> =
                    rebuilt.ids().iter().take(3).cloned().collect();
                let batch = sharded.search_batch(&queries, k, 3);
                for (id, hits) in queries.iter().zip(&batch) {
                    let qi = rebuilt.index_of(id).unwrap();
                    prop_assert_eq!(
                        hits.as_deref().expect("resident"),
                        rebuilt.top_k_index(qi, k),
                        "batch after step {}, query {}", step, id
                    );
                }
            } else {
                let id = &rebuilt.ids()[pick % rebuilt.len()];
                let qi = rebuilt.index_of(id).unwrap();
                prop_assert_eq!(
                    sharded.search(id, k).expect("resident"),
                    rebuilt.top_k_index(qi, k),
                    "search after step {}, query {}", step, id
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Degraded partials under a deadline that fires at a random point of
    /// the scatter, sequential and racing paths alike.  Whatever the
    /// trigger shard and interleaving:
    ///
    /// * `answered` has exactly one bit per shard;
    /// * every surviving hit carries the *exact* score the full ranking
    ///   proves for that id (never-return-a-pruned-winner: pruning only
    ///   drops candidates, it cannot fabricate or perturb survivors);
    /// * hits keep the canonical (score desc, id asc) order and respect k;
    /// * an undegraded result is the plain search answer, bit for bit;
    /// * a trigger past the last shard (deadline never fires) cannot
    ///   degrade either path.
    #[test]
    fn cancelled_scatter_yields_exact_partials_in_both_modes(
        shard_pow in 0u32..=3,
        trigger_pick in 0usize..1000,
        seed in 0u64..10_000,
        k in 1usize..=8,
    ) {
        let shards = 1usize << shard_pow;
        let trigger = trigger_pick % (shards + 1);
        let workflows = demo_workflows(24, seed);
        let config = SimilarityConfig::best_module_sets();
        for parallelism in [SearchParallelism::Sequential, SearchParallelism::racing_per_shard()] {
            let service = CorpusService::new(
                ShardedCorpus::build(config.clone(), shards, workflows.clone())
                    .with_parallelism(parallelism),
            );
            let query = workflows[seed as usize % workflows.len()].id.clone();
            let full = service
                .search(&query, service.len())
                .expect("query is resident");
            let plain = service.search(&query, k).expect("query is resident");
            let token = CancelToken::never();
            let result = service
                .search_deadline_with(&query, k, &token, |shard| {
                    if shard == trigger {
                        token.cancel();
                    }
                    true
                })
                .expect("query is resident");
            prop_assert_eq!(result.answered.len(), shards, "{}", parallelism);
            prop_assert!(result.hits.len() <= k);
            for pair in result.hits.windows(2) {
                let ordered = pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].id < pair[1].id);
                prop_assert!(ordered, "{}: hit order violated: {:?}", parallelism, pair);
            }
            for hit in &result.hits {
                let reference = full.iter().find(|h| h.id == hit.id);
                prop_assert!(
                    reference.is_some(),
                    "{}: hit {} not in the full ranking",
                    parallelism,
                    &hit.id
                );
                let reference = reference.expect("asserted above");
                prop_assert_eq!(
                    hit.score.to_bits(),
                    reference.score.to_bits(),
                    "{}: partial hit {} must keep its exact score",
                    parallelism,
                    &hit.id
                );
            }
            if result.degraded {
                prop_assert!(result.answered.iter().any(|&a| !a), "{}", parallelism);
            } else {
                prop_assert!(result.answered.iter().all(|&a| a), "{}", parallelism);
                prop_assert_eq!(&result.hits, &plain, "{}", parallelism);
            }
            if trigger == shards {
                // The gate never matches a real shard, so the deadline
                // never fires and both paths must answer in full.
                prop_assert!(!result.degraded, "{}", parallelism);
                prop_assert_eq!(&result.hits, &plain, "{}", parallelism);
            }
        }
    }
}

/// The multi-threaded smoke test: queries racing live churn through the
/// `RwLock`-per-shard service.  Invariants checked on every result:
///
/// * no returned id was removed *before* the query began (removal
///   completes under the owning shard's write lock, so later reads must
///   not see it);
/// * every returned id is one the corpus has ever known;
/// * result lists respect `k` and the canonical (score desc, id asc)
///   ordering.
#[test]
fn service_queries_racing_churn_never_surface_stale_workflows_hash() {
    service_churn_race(ShardPartition::HashId);
}

/// Round-robin routing adds a shared route table to the picture: the
/// remove/add interleaving must keep "id resident ⇔ id routed" at every
/// observable instant, or residents become unreachable orphans.
#[test]
fn service_queries_racing_churn_never_surface_stale_workflows_round_robin() {
    service_churn_race(ShardPartition::RoundRobin);
}

fn service_churn_race(partition: ShardPartition) {
    let workflows = demo_workflows(48, 23);
    let config = SimilarityConfig::best_module_sets();
    let service = CorpusService::new(ShardedCorpus::build_with(
        config,
        4,
        partition,
        workflows.clone(),
    ))
    .with_threads(4);

    let survivors: Vec<WorkflowId> = workflows.iter().skip(12).map(|w| w.id.clone()).collect();
    let victims: Vec<WorkflowId> = workflows.iter().take(12).map(|w| w.id.clone()).collect();
    let mut ever_known: BTreeSet<WorkflowId> = workflows.iter().map(|w| w.id.clone()).collect();
    let added: Vec<Workflow> = demo_workflows(8, 99)
        .into_iter()
        .enumerate()
        .map(|(i, mut wf)| {
            wf.id = format!("added-{i}").into();
            wf
        })
        .collect();
    ever_known.extend(added.iter().map(|w| w.id.clone()));

    // Ids whose removal has *completed*; queries snapshot it before they
    // start, so anything in the snapshot must be invisible to them.
    let removed_log: Mutex<BTreeSet<WorkflowId>> = Mutex::new(BTreeSet::new());

    std::thread::scope(|scope| {
        let service = &service;
        let removed_log = &removed_log;
        let (survivors, victims, added, ever_known) = (&survivors, &victims, &added, &ever_known);

        scope.spawn(move || {
            for (victim, addition) in victims.iter().zip(added.iter().cycle()) {
                assert!(service.remove(victim).is_some(), "victim {victim} resident");
                removed_log.lock().unwrap().insert(victim.clone());
                service.add(addition.clone());
                std::thread::yield_now();
            }
        });

        for worker in 0..2usize {
            scope.spawn(move || {
                for round in 0..30usize {
                    let query = &survivors[(worker * 31 + round * 7) % survivors.len()];
                    let removed_before: BTreeSet<WorkflowId> = removed_log.lock().unwrap().clone();
                    let hits = service
                        .search(query, 10)
                        .expect("survivor queries stay resident");
                    assert!(hits.len() <= 10);
                    for pair in hits.windows(2) {
                        let ordered = pair[0].score > pair[1].score
                            || (pair[0].score == pair[1].score && pair[0].id < pair[1].id);
                        assert!(ordered, "canonical hit ordering violated: {pair:?}");
                    }
                    for hit in &hits {
                        assert!(
                            ever_known.contains(&hit.id),
                            "unknown id {} surfaced",
                            hit.id
                        );
                        assert!(
                            !removed_before.contains(&hit.id),
                            "{} was removed before the query began",
                            hit.id
                        );
                        assert_ne!(&hit.id, query, "query excluded from its own results");
                    }
                    // Exercise the batch path under churn, too.
                    if round % 10 == 0 {
                        let batch = service.search_batch(std::slice::from_ref(query), 5);
                        assert!(batch[0].is_some());
                    }
                }
            });
        }
    });

    // After the dust settles: all victims gone, all additions resident
    // *and routed* (an orphaned resident would be invisible to contains
    // yet still pollute other queries), and the service still answers
    // exactly like a from-scratch rebuild.
    assert_eq!(service.len(), 48 - 12 + 8);
    for victim in &victims {
        assert!(!service.contains(victim));
    }
    for addition in &added {
        assert!(service.contains(&addition.id), "{} unrouted", addition.id);
        assert!(service.search(&addition.id, 3).is_some());
    }
    let sharded = service.into_sharded();
    let survivors_now: Vec<Workflow> = sharded
        .ids()
        .iter()
        .map(|id| sharded.get(id).unwrap().clone())
        .collect();
    let rebuilt = Corpus::build(SimilarityConfig::best_module_sets(), survivors_now);
    for id in sharded.ids().iter().step_by(5) {
        let qi = rebuilt.index_of(id).unwrap();
        assert_eq!(
            sharded.search(id, 10).unwrap(),
            rebuilt.top_k_index(qi, 10),
            "post-churn query {id}"
        );
    }
}

/// Sharded snapshot manifest round-trip on a realistic corpus, including a
/// shard holding zero workflows, plus the corrupt-one-shard fallback.
#[test]
fn sharded_snapshot_roundtrip_reproduces_search_results() {
    let dir = std::env::temp_dir().join("wfsim-bench-shard-snapshot");
    let _ = std::fs::remove_dir_all(&dir);
    let workflows = demo_workflows(30, 29);
    let config = SimilarityConfig::best_module_sets();
    // 1 spare shard beyond a round-robin of 30: build over 31 shards so
    // shard 30 is guaranteed empty.
    let sharded =
        ShardedCorpus::build_with(config.clone(), 31, ShardPartition::RoundRobin, workflows);
    assert!(sharded.shards().iter().any(|s| s.is_empty()));
    sharded.save(&dir).unwrap();

    let restored = ShardedCorpus::load(&dir, config.clone()).unwrap();
    assert_eq!(restored.ids(), sharded.ids());
    for id in sharded.ids().iter().step_by(3) {
        assert_eq!(
            restored.search(id, 10).unwrap(),
            sharded.search(id, 10).unwrap(),
            "restored query {id}"
        );
    }

    // Corrupting one shard file yields a typed per-shard error and a clean
    // fallback rebuild.
    let victim = dir.join("shard-007.snap");
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, text.replace("\"id\"", "\"ID\"")).unwrap();
    match ShardedCorpus::load(&dir, config.clone()) {
        Err(wf_sim::ShardSnapshotError::Shard { shard: 7, .. }) => {}
        Err(err) => panic!("unexpected error: {err}"),
        Ok(_) => panic!("corrupt shard must not load"),
    }
    let (rebuilt, origin) = ShardedCorpus::load_or_build(
        &dir,
        config,
        4,
        ShardPartition::HashId,
        demo_workflows(30, 29),
    );
    assert!(!origin.is_snapshot());
    assert_eq!(rebuilt.len(), 30);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault injection on the persistence layer: a shard snapshot cut off
/// mid-file (a crashed writer, a torn copy) must surface as a typed
/// per-shard error naming the exact shard, and `load_or_build` must
/// recover with a rebuild whose search results are bit-identical to the
/// corpus the snapshot was taken from.
#[test]
fn truncated_shard_snapshot_is_typed_and_recovery_is_equivalent() {
    let dir = std::env::temp_dir().join("wfsim-bench-shard-truncation");
    let _ = std::fs::remove_dir_all(&dir);
    let workflows = demo_workflows(24, 77);
    let config = SimilarityConfig::best_module_sets();
    let original =
        ShardedCorpus::build_with(config.clone(), 5, ShardPartition::HashId, workflows.clone());
    original.save(&dir).unwrap();

    // Truncate shard 3 mid-file: keep a strict prefix so the header may
    // even parse but the payload (and checksum) cannot.
    let victim = dir.join("shard-003.snap");
    let bytes = std::fs::read(&victim).unwrap();
    assert!(bytes.len() > 64, "fixture shard file is implausibly small");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    match ShardedCorpus::load(&dir, config.clone()) {
        Err(wf_sim::ShardSnapshotError::Shard { shard: 3, .. }) => {}
        Err(err) => panic!("truncation must be a typed shard-3 error, got: {err}"),
        Ok(_) => panic!("a truncated shard must not load"),
    }

    let (rebuilt, origin) =
        ShardedCorpus::load_or_build(&dir, config.clone(), 5, ShardPartition::HashId, workflows);
    assert!(!origin.is_snapshot());
    assert_eq!(
        origin.failed_shard(),
        Some(3),
        "rebuild reason names the shard"
    );
    assert_eq!(rebuilt.ids(), original.ids());
    for id in original.ids() {
        assert_eq!(
            rebuilt.search(&id, 10).unwrap(),
            original.search(&id, 10).unwrap(),
            "post-recovery query {id}"
        );
    }

    // The recovered corpus can re-save over the damaged snapshot and the
    // new snapshot round-trips cleanly.
    rebuilt.save(&dir).unwrap();
    let restored = ShardedCorpus::load(&dir, config).unwrap();
    assert_eq!(restored.ids(), original.ids());
    let _ = std::fs::remove_dir_all(&dir);
}
