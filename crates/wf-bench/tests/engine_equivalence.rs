//! End-to-end equivalence of the corpus-resident engine with the seed
//! scan path.
//!
//! The indexed engine is only allowed to be *fast*, never *different*: its
//! hit lists (ids, scores and tie-order) must be bit-identical to an
//! exhaustive [`SearchEngine::top_k`] scan, for every module comparison
//! scheme, and the lock-free parallel matrix builder must reproduce the
//! sequential matrix exactly.  These tests check both on the deterministic
//! synthetic Taverna corpus and on randomized mutated corpora.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_cluster::PairwiseSimilarities;
use wf_corpus::{generate_taverna_corpus, mutate, TavernaCorpusConfig};
use wf_model::Workflow;
use wf_repo::{IndexedSearchEngine, Repository, SearchEngine};
use wf_sim::config::Preprocessing;
use wf_sim::{
    MeasureKind, ModuleComparisonScheme, ProfiledMeasure, SimilarityConfig, WorkflowSimilarity,
};

fn six_schemes() -> Vec<ModuleComparisonScheme> {
    vec![
        ModuleComparisonScheme::pw0(),
        ModuleComparisonScheme::pw3(),
        ModuleComparisonScheme::pll(),
        ModuleComparisonScheme::plm(),
        ModuleComparisonScheme::gw1(),
        ModuleComparisonScheme::gll(),
    ]
}

fn mutated_corpus(size: usize, seed: u64) -> Vec<Workflow> {
    let (mut corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(size, seed));
    // An extra mutation round on top of the generator's family variants
    // diversifies sizes, labels and annotations further.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_ffee);
    for wf in corpus.iter_mut().skip(1).step_by(3) {
        mutate::mutate_round(wf, &mut rng);
    }
    corpus
}

/// The dedicated equivalence check of the acceptance criteria: indexed
/// top-k returns bit-identical hit lists to exhaustive `top_k` for all six
/// module comparison schemes.
#[test]
fn indexed_topk_is_bit_identical_for_all_six_schemes() {
    let corpus = mutated_corpus(80, 17);
    let repository = Repository::from_workflows(corpus.clone());
    assert_eq!(repository.len(), corpus.len(), "generator ids are unique");
    for scheme in six_schemes() {
        for (preselection, preprocessing) in [
            (wf_repo::PreselectionStrategy::AllPairs, Preprocessing::None),
            (
                wf_repo::PreselectionStrategy::TypeEquivalence,
                Preprocessing::ImportanceProjection,
            ),
        ] {
            let config = SimilarityConfig::new(
                MeasureKind::ModuleSets,
                scheme.clone(),
                preselection,
                preprocessing,
            );
            let name = config.name();
            let plain = WorkflowSimilarity::new(config.clone());
            let profiled = ProfiledMeasure::new(config, repository.workflows());
            let scan = SearchEngine::new(&repository, |a: &Workflow, b: &Workflow| {
                plain.similarity(a, b)
            });
            let indexed = IndexedSearchEngine::new(&profiled).with_threads(3);
            for query_index in [0usize, 33, 79] {
                let query = &repository.workflows()[query_index];
                let expected = scan.top_k(query, 10);
                let (hits, stats) = indexed.top_k_with_stats(query_index, 10);
                assert_eq!(hits, expected, "{name}, query {}", query.id);
                assert_eq!(
                    indexed.top_k_parallel(query_index, 10),
                    expected,
                    "{name} parallel, query {}",
                    query.id
                );
                assert_eq!(
                    stats.scored + stats.pruned + stats.zero_bound,
                    stats.candidates,
                    "{name} accounting, query {}",
                    query.id
                );
            }
        }
    }
}

#[test]
fn indexed_search_prunes_on_the_family_corpus() {
    let corpus = mutated_corpus(120, 5);
    let repository = Repository::from_workflows(corpus);
    let profiled =
        ProfiledMeasure::new(SimilarityConfig::best_module_sets(), repository.workflows());
    let indexed = IndexedSearchEngine::new(&profiled);
    let mut scored_total = 0usize;
    let mut candidates_total = 0usize;
    for query_index in 0..8 {
        let (_, stats) = indexed.top_k_with_stats(query_index, 10);
        scored_total += stats.scored;
        candidates_total += stats.candidates;
    }
    assert!(
        scored_total * 2 < candidates_total,
        "expected >50% of candidates pruned on a family corpus, \
         scored {scored_total} of {candidates_total}"
    );
}

#[test]
fn unbounded_measures_still_match_the_scan_engine() {
    // Path Sets has no cheap bound: the indexed engine must degrade to an
    // exhaustive profiled scan with identical results.
    let corpus = mutated_corpus(50, 23);
    let repository = Repository::from_workflows(corpus);
    let config = SimilarityConfig::best_path_sets();
    let plain = WorkflowSimilarity::new(config.clone());
    let profiled = ProfiledMeasure::new(config, repository.workflows());
    let scan = SearchEngine::new(&repository, |a: &Workflow, b: &Workflow| {
        plain.similarity(a, b)
    });
    let indexed = IndexedSearchEngine::new(&profiled);
    let query = &repository.workflows()[7];
    let expected = scan.top_k(query, 10);
    let (hits, stats) = indexed.top_k_with_stats(7, 10);
    assert_eq!(hits, expected);
    assert_eq!(stats.scored, stats.candidates, "no pruning without bounds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Indexed top-k ≡ brute-force top-k on randomized mutated corpora of
    /// 50–200 workflows, across schemes, queries and k.
    #[test]
    fn indexed_topk_equals_bruteforce_on_random_corpora(
        size in 50usize..=200,
        seed in 0u64..10_000,
        scheme_index in 0usize..6,
        query_offset in 0usize..50,
        k in 1usize..=12,
    ) {
        let corpus = mutated_corpus(size, seed);
        let repository = Repository::from_workflows(corpus);
        let config = SimilarityConfig::new(
            MeasureKind::ModuleSets,
            six_schemes()[scheme_index].clone(),
            wf_repo::PreselectionStrategy::TypeEquivalence,
            Preprocessing::ImportanceProjection,
        );
        let plain = WorkflowSimilarity::new(config.clone());
        let profiled = ProfiledMeasure::new(config, repository.workflows());
        let scan = SearchEngine::new(&repository, |a: &Workflow, b: &Workflow| {
            plain.similarity(a, b)
        });
        let indexed = IndexedSearchEngine::new(&profiled).with_threads(4);
        let query_index = query_offset % repository.len();
        let query = &repository.workflows()[query_index];
        let expected = scan.top_k(query, k);
        prop_assert_eq!(indexed.top_k(query_index, k), expected.clone());
        prop_assert_eq!(indexed.top_k_parallel(query_index, k), expected);
    }

    /// Parallel matrix ≡ sequential matrix on randomized mutated corpora
    /// (profiled measure, so the property also covers profile scoring
    /// under the matrix builder).
    #[test]
    fn parallel_matrix_equals_sequential_on_random_corpora(
        size in 50usize..=90,
        seed in 0u64..10_000,
        threads in 2usize..=8,
    ) {
        let corpus = mutated_corpus(size, seed);
        let config = SimilarityConfig::new(
            MeasureKind::ModuleSets,
            ModuleComparisonScheme::gll(),
            wf_repo::PreselectionStrategy::AllPairs,
            Preprocessing::None,
        );
        let profiled = ProfiledMeasure::new(config, &corpus);
        let sequential = PairwiseSimilarities::compute(&corpus, &profiled);
        let parallel = PairwiseSimilarities::compute_parallel(&corpus, &profiled, threads);
        prop_assert_eq!(parallel.ids(), sequential.ids());
        for i in 0..corpus.len() {
            for j in 0..corpus.len() {
                prop_assert_eq!(
                    parallel.similarity(i, j),
                    sequential.similarity(i, j),
                    "threads={}, cell ({},{})", threads, i, j
                );
            }
        }
    }
}
