//! End-to-end equivalence of the shared corpus layer with the seed paths.
//!
//! The `Corpus` is only allowed to be *shared* and *fast*, never
//! *different*: matrices filled from cached profiles must be bit-identical
//! to the legacy per-pair `Measure` path for every module comparison
//! scheme, a snapshot round-trip must restore a corpus that answers every
//! query and matrix cell exactly like the freshly built one, and
//! `add`/`remove` churn must leave index-backed search equal to a
//! from-scratch rebuild over the surviving workflows.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_cluster::PairwiseSimilarities;
use wf_corpus::{generate_taverna_corpus, mutate, TavernaCorpusConfig};
use wf_model::Workflow;
use wf_sim::config::Preprocessing;
use wf_sim::{Corpus, MeasureKind, ModuleComparisonScheme, SimilarityConfig, WorkflowSimilarity};

fn six_schemes() -> Vec<ModuleComparisonScheme> {
    vec![
        ModuleComparisonScheme::pw0(),
        ModuleComparisonScheme::pw3(),
        ModuleComparisonScheme::pll(),
        ModuleComparisonScheme::plm(),
        ModuleComparisonScheme::gw1(),
        ModuleComparisonScheme::gll(),
    ]
}

fn mutated_corpus(size: usize, seed: u64) -> Vec<Workflow> {
    let (mut corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(size, seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_ffee);
    for wf in corpus.iter_mut().skip(1).step_by(3) {
        mutate::mutate_round(wf, &mut rng);
    }
    corpus
}

fn assert_matrices_identical(a: &PairwiseSimilarities, b: &PairwiseSimilarities, what: &str) {
    assert_eq!(a.ids(), b.ids(), "{what}: id order");
    for i in 0..a.len() {
        for j in 0..a.len() {
            assert!(
                a.similarity(i, j) == b.similarity(i, j),
                "{what}: cell ({i},{j}): {} != {}",
                a.similarity(i, j),
                b.similarity(i, j)
            );
        }
    }
}

/// The dedicated equivalence check of the acceptance criteria: matrices
/// from cached profiles are bit-identical to the legacy per-pair path for
/// all six module comparison schemes.
#[test]
fn profiled_matrix_is_bit_identical_for_all_six_schemes() {
    let workflows = mutated_corpus(40, 29);
    for scheme in six_schemes() {
        for (preselection, preprocessing) in [
            (wf_repo::PreselectionStrategy::AllPairs, Preprocessing::None),
            (
                wf_repo::PreselectionStrategy::TypeEquivalence,
                Preprocessing::ImportanceProjection,
            ),
        ] {
            let config = SimilarityConfig::new(
                MeasureKind::ModuleSets,
                scheme.clone(),
                preselection,
                preprocessing,
            );
            let name = config.name();
            let plain = WorkflowSimilarity::new(config.clone());
            let legacy = PairwiseSimilarities::compute(&workflows, &plain);
            let corpus = Corpus::build(config, workflows.clone());
            assert_matrices_identical(
                &PairwiseSimilarities::compute_profiled(&corpus),
                &legacy,
                &format!("{name} sequential"),
            );
            assert_matrices_identical(
                &PairwiseSimilarities::compute_profiled_parallel(&corpus, 4),
                &legacy,
                &format!("{name} parallel"),
            );
        }
    }
}

/// Snapshot round-trip: the restored corpus answers search *and* matrix
/// queries exactly like the corpus it was saved from.
#[test]
fn snapshot_roundtrip_preserves_search_and_matrix_results() {
    let workflows = mutated_corpus(60, 31);
    let corpus = Corpus::build(SimilarityConfig::best_module_sets(), workflows);
    let restored = Corpus::from_snapshot_str(
        &corpus.to_snapshot_string(),
        SimilarityConfig::best_module_sets(),
    )
    .expect("snapshot loads");
    assert_eq!(restored.ids(), corpus.ids());
    assert_eq!(restored.token_index(), corpus.token_index());
    for query in 0..corpus.len() {
        assert_eq!(
            restored.top_k_index(query, 10),
            corpus.top_k_index(query, 10),
            "query {query}"
        );
    }
    assert_matrices_identical(
        &PairwiseSimilarities::compute_profiled(&restored),
        &PairwiseSimilarities::compute_profiled(&corpus),
        "snapshot matrix",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Profiled matrix ≡ legacy matrix on randomized mutated corpora,
    /// across schemes and thread counts.
    #[test]
    fn profiled_matrix_equals_legacy_on_random_corpora(
        size in 30usize..=80,
        seed in 0u64..10_000,
        scheme_index in 0usize..6,
        threads in 1usize..=8,
    ) {
        let workflows = mutated_corpus(size, seed);
        let config = SimilarityConfig::new(
            MeasureKind::ModuleSets,
            six_schemes()[scheme_index].clone(),
            wf_repo::PreselectionStrategy::TypeEquivalence,
            Preprocessing::ImportanceProjection,
        );
        let plain = WorkflowSimilarity::new(config.clone());
        let legacy = PairwiseSimilarities::compute(&workflows, &plain);
        let corpus = Corpus::build(config, workflows);
        let profiled = PairwiseSimilarities::compute_profiled_parallel(&corpus, threads);
        prop_assert_eq!(profiled.ids(), legacy.ids());
        for i in 0..legacy.len() {
            for j in 0..legacy.len() {
                prop_assert_eq!(
                    profiled.similarity(i, j),
                    legacy.similarity(i, j),
                    "cell ({},{})", i, j
                );
            }
        }
    }

    /// The serving-process invariant: after arbitrary `add`/`remove` churn
    /// (and a snapshot round-trip of the churned corpus), index-backed
    /// search answers exactly like a from-scratch rebuild over the
    /// surviving workflows.
    #[test]
    fn churned_corpus_equals_from_scratch_rebuild(
        size in 30usize..=70,
        seed in 0u64..10_000,
        ops in proptest::collection::vec((0u8..=2, 0usize..1000), 5..20),
        k in 1usize..=12,
    ) {
        let initial = mutated_corpus(size, seed);
        let extra = mutated_corpus(20, seed ^ 0xbeef);
        let config = SimilarityConfig::best_module_sets();
        let mut corpus = Corpus::build(config.clone(), initial);
        // Interleave removals of random residents with insertions of new
        // and replacement workflows.
        let mut extra_cursor = 0usize;
        for (op, pick) in ops {
            match op {
                0 if !corpus.is_empty() => {
                    let id = corpus.ids()[pick % corpus.len()].clone();
                    prop_assert!(corpus.remove(&id).is_some());
                }
                1 => {
                    let mut wf = extra[extra_cursor % extra.len()].clone();
                    wf.id = format!("churn-{extra_cursor}").into();
                    extra_cursor += 1;
                    corpus.add(wf);
                }
                _ if !corpus.is_empty() => {
                    // Replace a resident with a different structure.
                    let id = corpus.ids()[pick % corpus.len()].clone();
                    let mut wf = extra[pick % extra.len()].clone();
                    wf.id = id;
                    corpus.add(wf);
                }
                _ => {}
            }
        }
        let rebuilt = Corpus::build(config.clone(), corpus.workflows().to_vec());
        prop_assert_eq!(corpus.ids(), rebuilt.ids());
        let restored = Corpus::from_snapshot_str(&corpus.to_snapshot_string(), config)
            .expect("churned snapshot loads");
        for query in 0..corpus.len() {
            let expected = rebuilt.top_k_index(query, k);
            prop_assert_eq!(&corpus.top_k_index(query, k), &expected, "churned, query {}", query);
            prop_assert_eq!(&restored.top_k_index(query, k), &expected, "restored, query {}", query);
        }
    }
}
