//! Property tests pitting the Myers bit-parallel Levenshtein kernels
//! against first principles: metric axioms, the normalized-similarity
//! bounds, and agreement between the interned merge Jaccard and the
//! string-based one on randomized token soups.

use proptest::prelude::*;
use wf_text::levenshtein::{levenshtein, levenshtein_bounded, levenshtein_similarity};
use wf_text::{jaccard_index, tokenize, StringPool};

/// The classic two-row dynamic program, the oracle for the bit-parallel
/// kernels (duplicated here because the in-crate reference is test-only).
fn dp_reference(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    if b_chars.is_empty() {
        return a_chars.len();
    }
    let mut prev: Vec<usize> = (0..=b_chars.len()).collect();
    let mut curr = vec![0usize; b_chars.len() + 1];
    for (i, ac) in a_chars.iter().enumerate() {
        curr[0] = i + 1;
        for (j, bc) in b_chars.iter().enumerate() {
            let cost = usize::from(ac != bc);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b_chars.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn myers_equals_the_reference_dp(a in "[a-d_ ]{0,90}", b in "[a-d_ ]{0,90}") {
        prop_assert_eq!(levenshtein(&a, &b), dp_reference(&a, &b));
    }

    #[test]
    fn myers_equals_the_reference_dp_on_wide_alphabets(
        a in "[a-zA-Z0-9_]{0,70}",
        b in "[a-zA-Z0-9_]{0,70}",
    ) {
        prop_assert_eq!(levenshtein(&a, &b), dp_reference(&a, &b));
    }

    #[test]
    fn distance_is_a_metric_sample(a in "[ab]{0,20}", b in "[ab]{0,20}", c in "[ab]{0,20}") {
        let (ab, ba) = (levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
    }

    #[test]
    fn similarity_stays_in_unit_interval(a in "[a-f]{0,40}", b in "[a-f]{0,40}") {
        let s = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn bounded_agrees_with_unbounded(a in "[a-c]{0,30}", b in "[a-c]{0,30}", limit in 0usize..35) {
        let d = levenshtein(&a, &b);
        match levenshtein_bounded(&a, &b, limit) {
            Some(found) => {
                prop_assert_eq!(found, d);
                prop_assert!(found <= limit);
            }
            None => prop_assert!(d > limit),
        }
    }

    #[test]
    fn interned_jaccard_matches_string_jaccard(
        a in "[a-e ]{0,60}",
        b in "[a-e ]{0,60}",
    ) {
        let (ta, tb) = (tokenize(&a), tokenize(&b));
        let mut pool = StringPool::new();
        let sa = pool.intern_set(&ta);
        let sb = pool.intern_set(&tb);
        prop_assert_eq!(sa.jaccard(&sb), jaccard_index(&ta, &tb));
        prop_assert!(sa.jaccard_size_bound(&sb) + 1e-12 >= sa.jaccard(&sb));
    }
}
