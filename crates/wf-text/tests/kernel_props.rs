//! Property tests for the hot-path kernels: the `u64` word-batched
//! intersection merge (with its galloping skewed-size path) against the
//! scalar three-way merge, and the char-signature distance bound against
//! an independently written per-bin histogram reference.

use proptest::collection::vec;
use proptest::prelude::*;
use wf_text::signature::CharSignature;
use wf_text::{intersect_sorted, intersect_sorted_scalar, jaccard_sorted, TokenIdSet};

/// Sorted-deduped id slice from arbitrary raw ids.
fn normalize(mut ids: Vec<u32>) -> Vec<u32> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Jaccard recomputed from the scalar merge, the oracle for
/// [`jaccard_sorted`].
fn scalar_jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersect_sorted_scalar(a, b);
    inter as f64 / (a.len() + b.len() - inter) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn word_batched_intersection_matches_the_scalar_merge(
        a in vec(0u32..400, 0..120),
        b in vec(0u32..400, 0..120),
    ) {
        let (a, b) = (normalize(a), normalize(b));
        prop_assert_eq!(intersect_sorted(&a, &b), intersect_sorted_scalar(&a, &b));
        prop_assert_eq!(intersect_sorted(&b, &a), intersect_sorted_scalar(&a, &b));
    }

    #[test]
    fn skewed_sizes_exercise_the_galloping_path(
        small in vec(0u32..100_000, 0..6),
        large in vec(0u32..100_000, 200..400),
    ) {
        // |large| >= 16 × |small| after dedup is overwhelmingly likely;
        // either way the dispatcher must agree with the scalar merge.
        let (small, large) = (normalize(small), normalize(large));
        prop_assert_eq!(
            intersect_sorted(&small, &large),
            intersect_sorted_scalar(&small, &large)
        );
    }

    #[test]
    fn jaccard_sorted_matches_the_scalar_formula(
        a in vec(0u32..200, 0..80),
        b in vec(0u32..200, 0..80),
    ) {
        let (a, b) = (normalize(a), normalize(b));
        let got = jaccard_sorted(&a, &b);
        let want = scalar_jaccard(&a, &b);
        prop_assert_eq!(got.to_bits(), want.to_bits(), "{} vs {}", got, want);
        // And the TokenIdSet wrappers delegate to the same kernels.
        let (sa, sb) = (TokenIdSet::from_ids(a.clone()), TokenIdSet::from_ids(b.clone()));
        prop_assert_eq!(sa.jaccard(&sb).to_bits(), want.to_bits());
        prop_assert_eq!(sa.intersection_len(&sb), intersect_sorted_scalar(&a, &b));
    }

    #[test]
    fn signature_bound_matches_a_scalar_histogram_reference(
        a in "[a-p_ 0-9]{0,120}",
        b in "[a-p_ 0-9]{0,120}",
    ) {
        // Scalar reference: fold characters into 64 saturating bins by
        // code point, mirroring CharSignature::of, then take
        // max(length gap, ceil(L1/2)) directly.
        fn reference_bound(a: &str, b: &str) -> usize {
            let histo = |s: &str| {
                let mut bins = [0u8; 64];
                let mut chars = 0u32;
                for c in s.chars() {
                    let bin = (c as u32 as usize) % 64;
                    bins[bin] = bins[bin].saturating_add(1);
                    chars += 1;
                }
                (bins, chars)
            };
            let ((ba, ca), (bb, cb)) = (histo(a), histo(b));
            let l1: usize = ba
                .iter()
                .zip(bb.iter())
                .map(|(x, y)| usize::from(x.abs_diff(*y)))
                .sum();
            (ca.abs_diff(cb) as usize).max(l1.div_ceil(2))
        }
        let (sa, sb) = (CharSignature::of(&a), CharSignature::of(&b));
        prop_assert_eq!(sa.distance_lower_bound(&sb), reference_bound(&a, &b));
        prop_assert_eq!(sb.distance_lower_bound(&sa), reference_bound(&a, &b));
    }

    #[test]
    fn signature_bound_survives_saturated_bins(
        reps in 200usize..600,
        tail in "[a-h]{0,40}",
    ) {
        // Long runs of one character saturate its bin at 255; the
        // saturating counters must stay symmetric and admissible
        // against the length bound.
        let a = format!("{}{}", "z".repeat(reps), tail);
        let b = "z".repeat(reps / 2);
        let (sa, sb) = (CharSignature::of(&a), CharSignature::of(&b));
        let bound = sa.distance_lower_bound(&sb);
        prop_assert!(bound >= (a.chars().count() - b.chars().count()));
        prop_assert_eq!(bound, sb.distance_lower_bound(&sa));
    }
}
