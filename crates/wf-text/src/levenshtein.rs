//! Levenshtein edit distance and the normalized similarity derived from it.
//!
//! The paper compares module labels (and, in some schemes, descriptions and
//! scripts) "using Levenshtein edit distance" (reference \[23\]).  To turn
//! the distance into a similarity in `[0, 1]` we use the standard
//! normalization `1 - d / max(|a|, |b|)`, which is 1 for identical strings
//! and 0 for strings without any common structure.

/// Computes the Levenshtein edit distance between two strings, counted in
/// Unicode scalar values.
///
/// Uses the classic two-row dynamic program: `O(|a|·|b|)` time,
/// `O(min(|a|,|b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Iterate over the longer string, keep the DP row for the shorter one.
    let (outer, inner) = if a_chars.len() >= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if inner.is_empty() {
        return outer.len();
    }
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut curr: Vec<usize> = vec![0; inner.len() + 1];
    for (i, oc) in outer.iter().enumerate() {
        curr[0] = i + 1;
        for (j, ic) in inner.iter().enumerate() {
            let cost = usize::from(oc != ic);
            curr[j + 1] = (prev[j + 1] + 1) // deletion
                .min(curr[j] + 1) // insertion
                .min(prev[j] + cost); // substitution
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[inner.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`.
///
/// `1.0` for identical strings (including two empty strings), `0.0` when the
/// edit distance equals the length of the longer string.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Case-insensitive variant of [`levenshtein_similarity`].
///
/// Goderis et al. (reference \[18\] of the paper) report that lowercasing
/// labels slightly improves ranked retrieval; module comparison schemes can
/// opt into this variant.
pub fn levenshtein_similarity_ci(a: &str, b: &str) -> f64 {
    levenshtein_similarity(&a.to_lowercase(), &b.to_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_of_identical_strings_is_zero() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("get_pathway", "get_pathway"), 0);
    }

    #[test]
    fn distance_against_empty_string_is_length() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abcd", ""), 4);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("saturday", "sunday"), 3);
    }

    #[test]
    fn distance_is_symmetric() {
        let pairs = [
            ("blast_search", "blast"),
            ("get_pathway", "getPathways"),
            ("", "x"),
            ("áé", "ae"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a), "{a} vs {b}");
        }
    }

    #[test]
    fn unicode_is_counted_in_scalar_values() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("αβγ", "αβδ"), 1);
    }

    #[test]
    fn similarity_bounds_and_examples() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        assert_eq!(levenshtein_similarity("abc", ""), 0.0);
        let s = levenshtein_similarity("get_pathway", "get_pathways");
        assert!(s > 0.9 && s < 1.0);
    }

    #[test]
    fn case_insensitive_similarity_ignores_case() {
        assert_eq!(levenshtein_similarity_ci("BLAST", "blast"), 1.0);
        assert!(levenshtein_similarity("BLAST", "blast") < 1.0);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let words = ["blast", "blest", "blast_search", "search", ""];
        for a in words {
            for b in words {
                for c in words {
                    assert!(
                        levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c),
                        "triangle inequality violated for {a:?},{b:?},{c:?}"
                    );
                }
            }
        }
    }
}
