//! Levenshtein edit distance and the normalized similarity derived from it.
//!
//! The paper compares module labels (and, in some schemes, descriptions and
//! scripts) "using Levenshtein edit distance" (reference \[23\]).  To turn
//! the distance into a similarity in `[0, 1]` we use the standard
//! normalization `1 - d / max(|a|, |b|)`, which is 1 for identical strings
//! and 0 for strings without any common structure.
//!
//! The distance itself is computed with Myers' bit-parallel algorithm
//! (Myers 1999, in the formulation of Hyyrö 2003): the dynamic-programming
//! column is packed into machine words, so a comparison costs
//! `O(⌈m/64⌉ · n)` word operations instead of `O(m · n)` cell updates.
//! Strings that are pure ASCII are compared byte-wise without any
//! intermediate `Vec<char>` allocation; other strings fall back to Unicode
//! scalar values, collected exactly once per call.

/// Computes the Levenshtein edit distance between two strings, counted in
/// Unicode scalar values.
///
/// Uses Myers' bit-parallel algorithm: `O(⌈m/64⌉·n)` time after trimming
/// the common prefix and suffix, where `m` is the length of the shorter
/// string.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    if a.is_ascii() && b.is_ascii() {
        distance_units(a.as_bytes(), b.as_bytes())
    } else {
        let a_chars: Vec<char> = a.chars().collect();
        let b_chars: Vec<char> = b.chars().collect();
        distance_units(&a_chars, &b_chars)
    }
}

/// [`levenshtein`] with an early-exit length bound: returns `None` as soon
/// as the distance is guaranteed to exceed `limit` (the lengths alone
/// already force `d >= ||a| - |b||`), and otherwise `Some(d)` only when
/// `d <= limit`.
pub fn levenshtein_bounded(a: &str, b: &str, limit: usize) -> Option<usize> {
    let (la, lb) = if a.is_ascii() && b.is_ascii() {
        (a.len(), b.len())
    } else {
        (a.chars().count(), b.chars().count())
    };
    if la.abs_diff(lb) > limit {
        return None;
    }
    let d = levenshtein(a, b);
    (d <= limit).then_some(d)
}

/// Normalized Levenshtein similarity in `[0, 1]`.
///
/// `1.0` for identical strings (including two empty strings), `0.0` when the
/// edit distance equals the length of the longer string.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    if a.is_ascii() && b.is_ascii() {
        // ASCII: byte count == scalar-value count, no walk needed at all.
        similarity_from(
            distance_units(a.as_bytes(), b.as_bytes()),
            a.len().max(b.len()),
        )
    } else {
        // One pass per string: the collected scalar values provide both the
        // length and the comparison units.
        let a_chars: Vec<char> = a.chars().collect();
        let b_chars: Vec<char> = b.chars().collect();
        let max_len = a_chars.len().max(b_chars.len());
        similarity_from(distance_units(&a_chars, &b_chars), max_len)
    }
}

/// [`levenshtein_similarity`] with caller-provided scalar-value lengths, for
/// callers (such as corpus profiles) that already know the character counts
/// and must not pay for recounting them on every comparison.
///
/// `a_chars` / `b_chars` must equal `a.chars().count()` / `b.chars().count()`.
pub fn levenshtein_similarity_with_lens(a: &str, a_chars: usize, b: &str, b_chars: usize) -> f64 {
    debug_assert_eq!(a_chars, a.chars().count());
    debug_assert_eq!(b_chars, b.chars().count());
    if a == b {
        return 1.0;
    }
    similarity_from(levenshtein(a, b), a_chars.max(b_chars))
}

fn similarity_from(distance: usize, max_len: usize) -> f64 {
    if max_len == 0 {
        return 1.0;
    }
    1.0 - distance as f64 / max_len as f64
}

/// Case-insensitive variant of [`levenshtein_similarity`].
///
/// Goderis et al. (reference \[18\] of the paper) report that lowercasing
/// labels slightly improves ranked retrieval; module comparison schemes can
/// opt into this variant.
pub fn levenshtein_similarity_ci(a: &str, b: &str) -> f64 {
    levenshtein_similarity(&a.to_lowercase(), &b.to_lowercase())
}

/// The distance between two unit slices (bytes or scalar values).
///
/// Trims the common prefix and suffix, picks the shorter remainder as the
/// Myers pattern, and dispatches to the single-word or the blocked kernel.
fn distance_units<T: Copy + Ord>(a: &[T], b: &[T]) -> usize {
    // Trim the common prefix and suffix; both are edit-distance neutral.
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let (a, b) = (&a[..a.len() - suffix], &b[..b.len() - suffix]);

    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pattern.is_empty() {
        return text.len();
    }
    if pattern.len() <= 64 {
        myers_single(pattern, text)
    } else {
        myers_blocks(pattern, text)
    }
}

/// The distinct symbols of the pattern (sorted) and their per-block
/// position masks, laid out as `masks[symbol * blocks + block]`.
fn pattern_masks<T: Copy + Ord>(pattern: &[T], blocks: usize) -> (Vec<T>, Vec<u64>) {
    let mut symbols: Vec<T> = pattern.to_vec();
    symbols.sort_unstable();
    symbols.dedup();
    let mut masks = vec![0u64; symbols.len() * blocks];
    for (i, unit) in pattern.iter().enumerate() {
        let s = symbols.binary_search(unit).expect("symbol was collected");
        masks[s * blocks + i / 64] |= 1u64 << (i % 64);
    }
    (symbols, masks)
}

/// Myers' algorithm for patterns of at most 64 units: one word per column.
fn myers_single<T: Copy + Ord>(pattern: &[T], text: &[T]) -> usize {
    let m = pattern.len();
    let (symbols, masks) = pattern_masks(pattern, 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    let last = 1u64 << (m - 1);
    for unit in text {
        let eq = match symbols.binary_search(unit) {
            Ok(s) => masks[s],
            Err(_) => 0,
        };
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        }
        if mh & last != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// The blocked variant (Hyyrö 2003) for patterns longer than 64 units:
/// `⌈m/64⌉` words per column, horizontal deltas carried between blocks.
fn myers_blocks<T: Copy + Ord>(pattern: &[T], text: &[T]) -> usize {
    let m = pattern.len();
    let blocks = m.div_ceil(64);
    let (symbols, masks) = pattern_masks(pattern, blocks);
    let mut pv = vec![!0u64; blocks];
    let mut mv = vec![0u64; blocks];
    let mut score = m;
    let last = 1u64 << ((m - 1) % 64);
    for unit in text {
        let sym = symbols.binary_search(unit).ok();
        // The first row of the DP table increases by one per text unit, so
        // block 0 receives a positive horizontal carry.
        let mut ph_in = 1u64;
        let mut mh_in = 0u64;
        for b in 0..blocks {
            let eq0 = sym.map_or(0, |s| masks[s * blocks + b]);
            let pvb = pv[b];
            let mvb = mv[b];
            let xv = eq0 | mvb;
            let eq = eq0 | mh_in;
            let xh = (((eq & pvb).wrapping_add(pvb)) ^ pvb) | eq;
            let ph = mvb | !(xh | pvb);
            let mh = pvb & xh;
            if b == blocks - 1 {
                if ph & last != 0 {
                    score += 1;
                }
                if mh & last != 0 {
                    score -= 1;
                }
            }
            let ph_out = ph >> 63;
            let mh_out = mh >> 63;
            let ph = (ph << 1) | ph_in;
            let mh = (mh << 1) | mh_in;
            pv[b] = mh | !(xv | ph);
            mv[b] = ph & xv;
            ph_in = ph_out;
            mh_in = mh_out;
        }
    }
    score
}

/// The classic two-row dynamic program, kept as the reference
/// implementation the bit-parallel kernels are validated against.
#[cfg(test)]
pub(crate) fn levenshtein_reference(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    let (outer, inner) = if a_chars.len() >= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if inner.is_empty() {
        return outer.len();
    }
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut curr: Vec<usize> = vec![0; inner.len() + 1];
    for (i, oc) in outer.iter().enumerate() {
        curr[0] = i + 1;
        for (j, ic) in inner.iter().enumerate() {
            let cost = usize::from(oc != ic);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[inner.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_of_identical_strings_is_zero() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("get_pathway", "get_pathway"), 0);
    }

    #[test]
    fn distance_against_empty_string_is_length() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abcd", ""), 4);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("saturday", "sunday"), 3);
    }

    #[test]
    fn distance_is_symmetric() {
        let pairs = [
            ("blast_search", "blast"),
            ("get_pathway", "getPathways"),
            ("", "x"),
            ("áé", "ae"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a), "{a} vs {b}");
        }
    }

    #[test]
    fn unicode_is_counted_in_scalar_values() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("αβγ", "αβδ"), 1);
    }

    #[test]
    fn similarity_bounds_and_examples() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        assert_eq!(levenshtein_similarity("abc", ""), 0.0);
        let s = levenshtein_similarity("get_pathway", "get_pathways");
        assert!(s > 0.9 && s < 1.0);
    }

    #[test]
    fn case_insensitive_similarity_ignores_case() {
        assert_eq!(levenshtein_similarity_ci("BLAST", "blast"), 1.0);
        assert!(levenshtein_similarity("BLAST", "blast") < 1.0);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let words = ["blast", "blest", "blast_search", "search", ""];
        for a in words {
            for b in words {
                for c in words {
                    assert!(
                        levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c),
                        "triangle inequality violated for {a:?},{b:?},{c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bit_parallel_matches_the_reference_dp_on_handpicked_cases() {
        let words = [
            "",
            "a",
            "ab",
            "blast",
            "blast_search_against_uniprot",
            "the same words in a different order entirely",
            "αβγδε mixed unicode και ascii",
            "ααααααααααα",
        ];
        for a in words {
            for b in words {
                assert_eq!(
                    levenshtein(a, b),
                    levenshtein_reference(a, b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn blocked_kernel_handles_patterns_longer_than_64_units() {
        // Both strings longer than 64 characters exercise myers_blocks.
        let a = "abcdefghij".repeat(13); // 130 chars
        let mut b = a.clone();
        b.replace_range(5..6, "X");
        b.push_str("tail");
        assert_eq!(levenshtein(&a, &b), levenshtein_reference(&a, &b));
        assert_eq!(levenshtein(&a, &a[..100]), 30);

        // Exactly 64 / 65 units around the single-word boundary.
        let p64: String = "x".repeat(64);
        let p65: String = "x".repeat(65);
        assert_eq!(levenshtein(&p64, &p65), 1);
        assert_eq!(levenshtein(&p64, "x"), 63);
        let q: String = "xy".repeat(40);
        assert_eq!(levenshtein(&p65, &q), levenshtein_reference(&p65, &q));
    }

    #[test]
    fn bounded_distance_respects_the_limit() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
        // Length difference alone exceeds the limit: no DP work needed.
        assert_eq!(levenshtein_bounded("a", "abcdefgh", 3), None);
        assert_eq!(levenshtein_bounded("café", "c", 1), None);
    }

    #[test]
    fn prelength_variant_agrees_with_the_plain_similarity() {
        let pairs = [
            ("blast", "blastp"),
            ("", ""),
            ("café", "cafe"),
            ("get_pathway", "render"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                levenshtein_similarity_with_lens(a, a.chars().count(), b, b.chars().count()),
                levenshtein_similarity(a, b),
                "{a:?} vs {b:?}"
            );
        }
    }
}
