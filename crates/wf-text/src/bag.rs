//! Token bags: the intermediate representation of the annotation measures.
//!
//! A [`TokenBag`] stores the tokens of a piece of text (or a tag list)
//! together with their multiplicities, and knows how to compare itself to
//! another bag with either set semantics (the paper's choice) or multiset
//! semantics (the ablation the paper mentions).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::jaccard::{jaccard_index, multiset_jaccard};
use crate::tokenize::{tokenize, tokenize_filtered};

/// A bag (multiset) of lowercase tokens.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenBag {
    counts: BTreeMap<String, usize>,
    total: usize,
}

impl TokenBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        TokenBag::default()
    }

    /// Builds a bag from free text using the full Bag-of-Words pipeline
    /// (tokenize, lowercase, cleanse, remove stop words).
    pub fn from_text(text: &str) -> Self {
        let mut bag = TokenBag::new();
        for t in tokenize_filtered(text) {
            bag.insert(t);
        }
        bag
    }

    /// Builds a bag from free text *without* stop-word removal.
    pub fn from_text_unfiltered(text: &str) -> Self {
        let mut bag = TokenBag::new();
        for t in tokenize(text) {
            bag.insert(t);
        }
        bag
    }

    /// Builds a bag from a list of tags.
    ///
    /// Following the paper (Section 2.2, Bag of Tags), "no stopword removal
    /// or other preprocessing of the tags is performed" beyond
    /// lowercasing, since tags are expected to be deliberately chosen by the
    /// author.  Each tag is kept as a single token even if it contains
    /// spaces.
    pub fn from_tags<S: AsRef<str>>(tags: &[S]) -> Self {
        let mut bag = TokenBag::new();
        for t in tags {
            let t = t.as_ref().trim().to_lowercase();
            if !t.is_empty() {
                bag.insert(t);
            }
        }
        bag
    }

    /// Inserts one token.
    pub fn insert(&mut self, token: impl Into<String>) {
        *self.counts.entry(token.into()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of *distinct* tokens.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total number of tokens including duplicates.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// True if the bag contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The multiplicity of a token.
    pub fn count(&self, token: &str) -> usize {
        self.counts.get(token).copied().unwrap_or(0)
    }

    /// The distinct tokens, sorted.
    pub fn tokens(&self) -> Vec<&str> {
        self.counts.keys().map(String::as_str).collect()
    }

    /// Set-semantics similarity (`#matches / (#matches + #mismatches)`),
    /// the formulation used by the paper for Bag of Words and Bag of Tags.
    pub fn set_similarity(&self, other: &TokenBag) -> f64 {
        jaccard_index(&self.tokens(), &other.tokens())
    }

    /// Multiset-semantics similarity — the variant the paper evaluated and
    /// found to perform slightly worse.
    pub fn multiset_similarity(&self, other: &TokenBag) -> f64 {
        let expand = |bag: &TokenBag| -> Vec<String> {
            bag.counts
                .iter()
                .flat_map(|(t, &c)| std::iter::repeat_n(t.clone(), c))
                .collect()
        };
        multiset_jaccard(&expand(self), &expand(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_applies_full_pipeline() {
        let bag = TokenBag::from_text("The KEGG pathway_analysis of genes");
        assert_eq!(bag.tokens(), vec!["analysis", "genes", "kegg", "pathway"]);
        assert_eq!(bag.count("kegg"), 1);
        assert_eq!(bag.count("the"), 0, "stop words filtered");
    }

    #[test]
    fn unfiltered_variant_keeps_stopwords() {
        let bag = TokenBag::from_text_unfiltered("the pathway");
        assert_eq!(bag.count("the"), 1);
    }

    #[test]
    fn from_tags_keeps_tags_whole_and_lowercases() {
        let bag = TokenBag::from_tags(&["KEGG", "pathway analysis", " ", "BLAST"]);
        assert_eq!(bag.tokens(), vec!["blast", "kegg", "pathway analysis"]);
        assert_eq!(bag.distinct_len(), 3);
    }

    #[test]
    fn counts_and_lengths() {
        let bag = TokenBag::from_text_unfiltered("gene gene protein");
        assert_eq!(bag.total_len(), 3);
        assert_eq!(bag.distinct_len(), 2);
        assert_eq!(bag.count("gene"), 2);
        assert!(!bag.is_empty());
        assert!(TokenBag::new().is_empty());
    }

    #[test]
    fn set_similarity_matches_paper_formula() {
        let a = TokenBag::from_text("KEGG pathway analysis");
        let b = TokenBag::from_text("pathway analysis for genes");
        // tokens a: {kegg, pathway, analysis}, b: {pathway, analysis, genes}
        // matches = 2, mismatches = 2 -> 0.5
        assert_eq!(a.set_similarity(&b), 0.5);
        assert_eq!(a.set_similarity(&b), b.set_similarity(&a));
    }

    #[test]
    fn identical_bags_have_similarity_one() {
        let a = TokenBag::from_text("protein blast search");
        assert_eq!(a.set_similarity(&a.clone()), 1.0);
        assert_eq!(a.multiset_similarity(&a.clone()), 1.0);
    }

    #[test]
    fn multiset_similarity_is_stricter_with_repeats() {
        let a = TokenBag::from_text_unfiltered("gene gene protein");
        let b = TokenBag::from_text_unfiltered("gene protein protein");
        assert_eq!(a.set_similarity(&b), 1.0);
        assert!(a.multiset_similarity(&b) < 1.0);
    }

    #[test]
    fn empty_bags_are_identical() {
        let a = TokenBag::new();
        let b = TokenBag::from_text("of the and");
        assert!(b.is_empty(), "all tokens were stop words");
        assert_eq!(a.set_similarity(&b), 1.0);
    }
}
