//! # wf-text — text preprocessing and string similarity
//!
//! The annotation-based measures of the paper (Section 2.2) and the module
//! comparison schemes (Section 2.1.1) rely on a small set of text
//! primitives, implemented here without external dependencies:
//!
//! * [`levenshtein`] — the Levenshtein edit distance and the normalized
//!   string similarity derived from it (`pll`, `pw0`, `pw3` label / script /
//!   description comparison).
//! * [`tokenize`] — the Bag-of-Words tokenization pipeline: split on
//!   whitespace and underscores, lowercase, strip non-alphanumeric
//!   characters.
//! * [`stopwords`] — the English stop-word list applied to workflow titles
//!   and descriptions (tags are deliberately *not* filtered, following the
//!   paper).
//! * [`bag`] — token multiset ("bag") utilities, including both the
//!   set-semantics Jaccard used by the paper and the multiset variant the
//!   paper mentions trying and discarding.
//! * [`jaccard`] — the plain Jaccard index on sets, and the similarity
//!   quotient `matches / (matches + mismatches)` used by Bag of Words / Bag
//!   of Tags.
//! * [`intern`] — corpus-wide string interning and sorted-id token sets
//!   with `O(a+b)` merge-based Jaccard, the substrate of the corpus-resident
//!   similarity engine.
//! * [`signature`] — fixed-size character-frequency signatures giving
//!   admissible constant-time lower bounds on the Levenshtein distance,
//!   used by the upper-bound pruning search.

#![deny(unsafe_code)]

pub mod bag;
pub mod intern;
pub mod jaccard;
pub mod levenshtein;
pub mod signature;
pub mod stopwords;
pub mod tokenize;

pub use bag::TokenBag;
pub use intern::{
    intersect_sorted, intersect_sorted_scalar, jaccard_sorted, FrozenInterner, StringPool,
    TokenIdSet,
};
pub use jaccard::{jaccard_index, match_mismatch_similarity};
pub use levenshtein::{
    levenshtein, levenshtein_bounded, levenshtein_similarity, levenshtein_similarity_with_lens,
};
pub use signature::CharSignature;
pub use stopwords::is_stopword;
pub use tokenize::{tokenize, tokenize_filtered};
