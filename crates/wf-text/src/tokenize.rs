//! Tokenization for the Bag-of-Words measure.
//!
//! Following Section 2.2 of the paper, titles and descriptions are
//! "tokenized using whitespace and underscores as separators.  The resulting
//! tokens are converted to lowercase and cleansed from any non alphanumeric
//! characters.  Tokens are filtered for stopwords."

use crate::stopwords::is_stopword;

/// Splits `text` on whitespace and underscores, lowercases each token and
/// removes non-alphanumeric characters.  Tokens that become empty after
/// cleansing are dropped.  Stop words are *not* removed (see
/// [`tokenize_filtered`]).
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| c.is_whitespace() || c == '_')
        .map(clean_token)
        .filter(|t| !t.is_empty())
        .collect()
}

/// [`tokenize`] followed by stop-word removal — the full Bag-of-Words
/// preprocessing pipeline of the paper.
pub fn tokenize_filtered(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect()
}

/// Lowercases a raw token and strips every non-alphanumeric character.
fn clean_token(raw: &str) -> String {
    raw.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_underscores() {
        assert_eq!(
            tokenize("KEGG pathway_analysis workflow"),
            vec!["kegg", "pathway", "analysis", "workflow"]
        );
    }

    #[test]
    fn lowercases_and_strips_non_alphanumeric() {
        assert_eq!(
            tokenize("Get Pathway-Genes by Entrez (gene id)!"),
            vec!["get", "pathwaygenes", "by", "entrez", "gene", "id"]
        );
    }

    #[test]
    fn empty_tokens_are_dropped() {
        assert_eq!(tokenize("___  --- !!!"), Vec::<String>::new());
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   "), Vec::<String>::new());
    }

    #[test]
    fn numbers_are_preserved() {
        assert_eq!(
            tokenize("top_10 results v2"),
            vec!["top", "10", "results", "v2"]
        );
    }

    #[test]
    fn filtered_variant_removes_stopwords() {
        let tokens = tokenize_filtered("the analysis of a pathway and its genes");
        assert_eq!(tokens, vec!["analysis", "pathway", "genes"]);
    }

    #[test]
    fn filtered_keeps_domain_terms() {
        let tokens = tokenize_filtered("BLAST search against UniProt");
        assert_eq!(tokens, vec!["blast", "search", "uniprot"]);
    }

    #[test]
    fn tokenization_preserves_multiplicity() {
        assert_eq!(
            tokenize("gene gene gene"),
            vec!["gene", "gene", "gene"],
            "tokenize keeps duplicates; deduplication is the bag's job"
        );
    }

    #[test]
    fn unicode_tokens_are_lowercased() {
        assert_eq!(tokenize("Protéine Analyse"), vec!["protéine", "analyse"]);
    }
}
