//! English stop words removed from workflow titles and descriptions.
//!
//! The paper removes stop words from titles and descriptions before the
//! Bag-of-Words comparison but keeps tags untouched.  The list below is the
//! usual small English list extended with a few words that are ubiquitous in
//! workflow descriptions ("workflow", "using", "given") and therefore carry
//! no discriminating information — the same spirit in which the paper treats
//! frequent trivial modules as unimportant.

/// The stop-word list, lowercase, sorted.
pub const STOPWORDS: &[&str] = &[
    "a", "about", "after", "against", "all", "also", "an", "and", "any", "are", "as", "at", "be",
    "because", "been", "before", "being", "between", "both", "but", "by", "can", "could", "did",
    "do", "does", "doing", "done", "down", "each", "either", "etc", "for", "from", "further",
    "get", "gets", "given", "gives", "has", "have", "having", "here", "how", "i", "if", "in",
    "into", "is", "it", "its", "itself", "just", "may", "me", "more", "most", "my", "no", "nor",
    "not", "of", "off", "on", "once", "one", "only", "or", "other", "our", "out", "over", "own",
    "per", "same", "set", "should", "so", "some", "such", "than", "that", "the", "their", "them",
    "then", "there", "these", "they", "this", "those", "through", "to", "too", "under", "until",
    "up", "use", "used", "uses", "using", "very", "via", "was", "we", "were", "what", "when",
    "where", "which", "while", "who", "whom", "why", "will", "with", "within", "without", "you",
    "your",
];

/// True if `token` (already lowercased by the tokenizer) is a stop word.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted, STOPWORDS,
            "STOPWORDS must be sorted and deduplicated"
        );
    }

    #[test]
    fn list_is_lowercase() {
        assert!(STOPWORDS
            .iter()
            .all(|w| w.chars().all(|c| c.is_lowercase())));
    }

    #[test]
    fn common_stopwords_are_detected() {
        for w in ["the", "and", "of", "using", "with", "a"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn domain_terms_are_not_stopwords() {
        for w in ["blast", "pathway", "gene", "protein", "kegg", "sequence"] {
            assert!(!is_stopword(w), "{w} must not be a stop word");
        }
    }

    #[test]
    fn lookup_is_exact_not_prefix() {
        assert!(is_stopword("on"));
        assert!(!is_stopword("ontology"));
    }
}
