//! Jaccard-style set similarities.
//!
//! Two closely related quotients appear in the paper:
//!
//! * the classical Jaccard index `|A ∩ B| / |A ∪ B|`, which the structural
//!   normalization of Section 2.1.4 generalises, and
//! * the Bag-of-Words similarity `#matches / (#matches + #mismatches)`
//!   (Section 2.2), which is exactly the Jaccard index of the two token sets
//!   — the helper [`match_mismatch_similarity`] spells out that formulation.

use std::collections::BTreeSet;

/// The classical Jaccard index of two sets given as slices.
///
/// Duplicates within a slice are ignored (set semantics).  Two empty sets
/// are defined to have similarity 1.0 — they are identical.
pub fn jaccard_index<T: Ord>(a: &[T], b: &[T]) -> f64 {
    let sa: BTreeSet<&T> = a.iter().collect();
    let sb: BTreeSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    intersection as f64 / union as f64
}

/// The `#matches / (#matches + #mismatches)` similarity of the paper's
/// Bag-of-Words and Bag-of-Tags measures.
///
/// `matches` is the number of distinct tokens found in both inputs,
/// `mismatches` the number of distinct tokens present in only one of them.
/// This equals the Jaccard index on the token sets; both entry points exist
/// because the paper defines the measures in this form.
pub fn match_mismatch_similarity<T: Ord>(a: &[T], b: &[T]) -> f64 {
    jaccard_index(a, b)
}

/// The multiset ("bag") generalisation of the Jaccard index:
/// `Σ min(count_A, count_B) / Σ max(count_A, count_B)`.
///
/// The paper mentions evaluating variants of Bag of Words that account for
/// multiple token occurrences and finding them slightly worse; this function
/// exists to reproduce that ablation.
pub fn multiset_jaccard<T: Ord + Clone>(a: &[T], b: &[T]) -> f64 {
    use std::collections::BTreeMap;
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut counts: BTreeMap<&T, (usize, usize)> = BTreeMap::new();
    for x in a {
        counts.entry(x).or_default().0 += 1;
    }
    for x in b {
        counts.entry(x).or_default().1 += 1;
    }
    let mut min_sum = 0usize;
    let mut max_sum = 0usize;
    for (ca, cb) in counts.values() {
        min_sum += ca.min(cb);
        max_sum += ca.max(cb);
    }
    if max_sum == 0 {
        1.0
    } else {
        min_sum as f64 / max_sum as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_similarity_one() {
        assert_eq!(jaccard_index(&["a", "b"], &["b", "a"]), 1.0);
        assert_eq!(jaccard_index::<&str>(&[], &[]), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        assert_eq!(jaccard_index(&["a"], &["b"]), 0.0);
        assert_eq!(jaccard_index(&["a", "b"], &[]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {a,b,c} vs {b,c,d}: intersection 2, union 4.
        assert_eq!(jaccard_index(&["a", "b", "c"], &["b", "c", "d"]), 0.5);
    }

    #[test]
    fn duplicates_are_ignored_in_set_semantics() {
        assert_eq!(jaccard_index(&["a", "a", "b"], &["a", "b", "b"]), 1.0);
    }

    #[test]
    fn match_mismatch_equals_jaccard() {
        let a = ["kegg", "pathway", "analysis"];
        let b = ["pathway", "analysis", "genes", "entrez"];
        assert_eq!(match_mismatch_similarity(&a, &b), jaccard_index(&a, &b));
    }

    #[test]
    fn multiset_jaccard_accounts_for_counts() {
        // {a,a,b} vs {a,b,b}: min-sum = 1+1 = 2, max-sum = 2+2 = 4.
        assert_eq!(multiset_jaccard(&["a", "a", "b"], &["a", "b", "b"]), 0.5);
        // Set semantics would say 1.0; the multiset variant is stricter.
        assert!(multiset_jaccard(&["a", "a", "b"], &["a", "b", "b"]) < 1.0);
        assert_eq!(multiset_jaccard::<&str>(&[], &[]), 1.0);
        assert_eq!(multiset_jaccard(&["a"], &[]), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = ["x", "y", "z"];
        let b = ["y", "z", "w", "v"];
        assert_eq!(jaccard_index(&a, &b), jaccard_index(&b, &a));
        assert_eq!(multiset_jaccard(&a, &b), multiset_jaccard(&b, &a));
    }
}
