//! Corpus-wide string interning and interned token sets.
//!
//! Repository-scale scoring compares the same texts millions of times; the
//! profiled engine therefore tokenizes each text once, interns the tokens
//! in a corpus-wide [`StringPool`], and keeps the distinct token ids as a
//! sorted [`TokenIdSet`].  Set comparisons then become `O(a + b)` merges
//! over dense `u32` ids — no hashing, no string comparisons, no
//! allocation — and produce exactly the same counts (and therefore exactly
//! the same similarity values) as the string-based [`crate::jaccard_index`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A corpus-wide string interner: every distinct token string maps to a
/// dense `u32` id.
#[derive(Debug, Clone, Default)]
pub struct StringPool {
    ids: BTreeMap<String, u32>,
    strings: Vec<String>,
}

impl StringPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        StringPool::default()
    }

    /// Reconstructs a pool from its strings in id order (the inverse of
    /// [`StringPool::strings`]) — the snapshot-loading path: token `i` of
    /// `strings` is assigned id `i`, so every id recorded before the
    /// snapshot resolves to the same token afterwards.
    pub fn from_strings(strings: Vec<String>) -> Self {
        let ids = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        StringPool { ids, strings }
    }

    /// The interned strings in id order (`strings()[id]` is the token of
    /// `id`) — the serializable representation of the pool.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Interns a token, returning its id (allocating a new id for unseen
    /// tokens).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(token.to_string(), id);
        self.strings.push(token.to_string());
        id
    }

    /// The id of an already interned token, if any.
    pub fn lookup(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token string behind an id.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns every token of an iterator and returns the *distinct* ids,
    /// sorted ascending — the canonical [`TokenIdSet`] representation.
    pub fn intern_set<I, S>(&mut self, tokens: I) -> TokenIdSet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ids: Vec<u32> = tokens
            .into_iter()
            .map(|t| self.intern(t.as_ref()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        TokenIdSet { ids }
    }
}

/// Resolves tokens against a *frozen* [`StringPool`] without mutating it.
///
/// Known tokens map to their interned pool ids; unknown tokens are assigned
/// fresh ephemeral ids past the end of the pool (`pool.len() + i`, in
/// first-occurrence order), shared across every `resolve_set` call on the
/// same interner.  The resulting [`TokenIdSet`]s compare against any set
/// interned in the pool exactly as if the tokens had been interned mutably:
/// equal strings share an id, distinct strings never collide — so
/// intersection counts, set sizes, and therefore every Jaccard value are
/// bit-identical.  This is the query-side interning of a sharded corpus: a
/// search must profile its query against each shard's pool while concurrent
/// readers share that pool immutably.
pub struct FrozenInterner<'p> {
    pool: &'p StringPool,
    fresh: BTreeMap<String, u32>,
}

impl<'p> FrozenInterner<'p> {
    /// A resolver over a frozen pool.
    pub fn new(pool: &'p StringPool) -> Self {
        FrozenInterner {
            pool,
            fresh: BTreeMap::new(),
        }
    }

    /// The id of a token: its pool id if interned, otherwise a stable
    /// ephemeral id shared by every later occurrence on this interner.
    pub fn resolve(&mut self, token: &str) -> u32 {
        if let Some(id) = self.pool.lookup(token) {
            return id;
        }
        if let Some(&id) = self.fresh.get(token) {
            return id;
        }
        let id = (self.pool.len() + self.fresh.len()) as u32;
        self.fresh.insert(token.to_string(), id);
        id
    }

    /// [`StringPool::intern_set`] against the frozen pool: the distinct
    /// resolved ids, sorted ascending.
    pub fn resolve_set<I, S>(&mut self, tokens: I) -> TokenIdSet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        TokenIdSet::from_ids(
            tokens
                .into_iter()
                .map(|t| self.resolve(t.as_ref()))
                .collect(),
        )
    }

    /// Number of tokens not found in the underlying pool so far.
    pub fn fresh_count(&self) -> usize {
        self.fresh.len()
    }
}

/// A set of interned token ids, stored sorted and deduplicated.
///
/// The serde representation is the sorted id vector itself; deserialization
/// re-normalises (sorts and dedups), so hand-edited snapshots cannot break
/// the ordering invariant the merge algorithms rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenIdSet {
    ids: Vec<u32>,
}

impl Serialize for TokenIdSet {
    fn serialize_value(&self) -> serde::Value {
        self.ids.serialize_value()
    }
}

impl Deserialize for TokenIdSet {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TokenIdSet::from_ids(Vec::<u32>::deserialize_value(value)?))
    }
}

impl TokenIdSet {
    /// Builds a set from arbitrary ids (sorting and deduplicating).
    pub fn from_ids(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        TokenIdSet { ids }
    }

    /// The sorted distinct ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for the empty set.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Size of the intersection with another set, by word-batched sorted
    /// merge ([`intersect_sorted`]).
    // lint:hot the innermost comparison of every token-set similarity;
    // wfsim_lint forbids lock acquisition and heap allocation here.
    pub fn intersection_len(&self, other: &TokenIdSet) -> usize {
        intersect_sorted(&self.ids, &other.ids)
    }

    /// The Jaccard index `|A ∩ B| / |A ∪ B|` in a single `O(a + b)` merge.
    ///
    /// Matches [`crate::jaccard_index`] exactly, including the convention
    /// that two empty sets have similarity 1.
    // lint:hot called once per scored candidate pair on module-similarity
    // paths; must stay allocation- and lock-free.
    pub fn jaccard(&self, other: &TokenIdSet) -> f64 {
        jaccard_sorted(&self.ids, &other.ids)
    }

    /// An admissible upper bound on [`TokenIdSet::jaccard`] computable from
    /// the set sizes alone: `min(|A|, |B|) / max(|A|, |B|)`.
    pub fn jaccard_size_bound(&self, other: &TokenIdSet) -> f64 {
        let (a, b) = (self.len(), other.len());
        if a == 0 && b == 0 {
            return 1.0;
        }
        if a == 0 || b == 0 {
            return 0.0;
        }
        a.min(b) as f64 / a.max(b) as f64
    }
}

/// When one set is at least this many times larger than the other, the
/// merge switches from the word-batched linear path to galloping search
/// over the larger set.
const GALLOP_RATIO: usize = 16;

/// Intersection size of two sorted, deduplicated `u32` slices.
///
/// The workhorse behind [`TokenIdSet::intersection_len`]: a `u64`
/// word-batched merge for similar sizes and a galloping (exponential
/// probe + binary search) path when one side is ≥ [`GALLOP_RATIO`]×
/// larger.  Exactly equivalent to the classic three-way scalar merge
/// ([`intersect_sorted_scalar`]) for every valid input.
// lint:hot innermost loop of every token-set comparison; wfsim_lint
// forbids lock acquisition and heap allocation here.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    // Range-disjoint sets short-circuit without touching either body.
    // `small` is non-empty, so both first/last lookups are safe.
    let (s_first, s_last) = (small[0], small[small.len() - 1]);
    let (l_first, l_last) = (large[0], large[large.len() - 1]);
    if s_last < l_first || l_last < s_first {
        return 0;
    }
    if large.len() >= GALLOP_RATIO * small.len() {
        intersect_gallop(small, large)
    } else {
        intersect_words(small, large)
    }
}

/// Word-batched linear merge: packs adjacent pairs of `u32` ids into a
/// `u64` so one comparison can skip two elements at a time, falling back
/// to a branchless single-element step when the word ranges overlap.
// lint:hot body of intersect_sorted's balanced path; alloc/lock-free.
fn intersect_words(a: &[u32], b: &[u32]) -> usize {
    const LO: u64 = 0xFFFF_FFFF;
    let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
    while i + 1 < a.len() && j + 1 < b.len() {
        // wa = a[i] | a[i+1] << 32: the lane order makes a word compare
        // equivalent to comparing the *upper* (later, larger) element
        // first.  wa < (wb & LO) << 32  ⟺  a[i+1] < b[j], i.e. both of
        // a's packed elements sit strictly below b's window — skip both.
        let wa = u64::from(a[i]) | (u64::from(a[i + 1]) << 32);
        let wb = u64::from(b[j]) | (u64::from(b[j + 1]) << 32);
        if wa < (wb & LO) << 32 {
            i += 2;
        } else if wb < (wa & LO) << 32 {
            j += 2;
        } else {
            // Windows overlap: take one branchless merge step.
            let (x, y) = (a[i], b[j]);
            common += usize::from(x == y);
            i += usize::from(x <= y);
            j += usize::from(y <= x);
        }
    }
    // Branchless scalar tail (at most one element left on one side).
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        common += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    common
}

/// Galloping merge for skewed sizes: for each element of the small set,
/// exponentially probe forward in the large set, then binary-search the
/// bracketed range.  `O(|small| · log |large|)`.
// lint:hot body of intersect_sorted's skewed path; alloc/lock-free.
fn intersect_gallop(small: &[u32], large: &[u32]) -> usize {
    let mut lo = 0usize;
    let mut common = 0usize;
    for &x in small {
        // Exponential probe: find a window [lo, lo + step) with
        // large[lo - 1] < x (everything before lo is < x).
        let mut step = 1usize;
        while lo + step <= large.len() && large[lo + step - 1] < x {
            lo += step;
            step <<= 1;
        }
        let hi = large.len().min(lo + step);
        lo += large[lo..hi].partition_point(|&v| v < x);
        if lo < large.len() && large[lo] == x {
            common += 1;
            lo += 1;
        } else if lo == large.len() {
            break;
        }
    }
    common
}

/// Reference scalar three-way merge, kept as the equivalence oracle for
/// property tests and the microbenchmark baseline.  Not used on hot
/// paths.
#[doc(hidden)]
pub fn intersect_sorted_scalar(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

/// Jaccard index of two sorted, deduplicated `u32` slices, with the
/// empty-vs-empty = 1.0 convention of [`crate::jaccard_index`].
// lint:hot called once per scored candidate pair; alloc/lock-free.
pub fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = intersect_sorted(a, b);
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard_index;
    use crate::tokenize;

    #[test]
    fn interning_assigns_stable_dense_ids() {
        let mut pool = StringPool::new();
        let a = pool.intern("blast");
        let b = pool.intern("search");
        assert_eq!(pool.intern("blast"), a);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.lookup("search"), Some(b));
        assert_eq!(pool.lookup("missing"), None);
        assert_eq!(pool.resolve(a), Some("blast"));
        assert!(StringPool::new().is_empty());
    }

    #[test]
    fn intern_set_sorts_and_dedups() {
        let mut pool = StringPool::new();
        let set = pool.intern_set(["b", "a", "b", "c"]);
        assert_eq!(set.len(), 3);
        let ids = set.ids();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_jaccard_matches_the_string_based_jaccard() {
        let texts = [
            ("KEGG pathway analysis", "pathway analysis for genes"),
            ("", ""),
            ("blast", ""),
            ("a b c d", "c d e f g"),
            ("same same same", "same"),
        ];
        let mut pool = StringPool::new();
        for (ta, tb) in texts {
            let (toks_a, toks_b) = (tokenize(ta), tokenize(tb));
            let (sa, sb) = (pool.intern_set(&toks_a), pool.intern_set(&toks_b));
            assert_eq!(
                sa.jaccard(&sb),
                jaccard_index(&toks_a, &toks_b),
                "{ta:?} vs {tb:?}"
            );
        }
    }

    #[test]
    fn size_bound_dominates_the_exact_jaccard() {
        let mut pool = StringPool::new();
        let cases = [
            (vec!["a", "b", "c"], vec!["b", "c", "d", "e"]),
            (vec![], vec![]),
            (vec!["x"], vec![]),
            (vec!["x", "y"], vec!["x", "y"]),
        ];
        for (ta, tb) in cases {
            let sa = pool.intern_set(ta.iter());
            let sb = pool.intern_set(tb.iter());
            assert!(sa.jaccard_size_bound(&sb) + 1e-12 >= sa.jaccard(&sb));
        }
    }

    #[test]
    fn frozen_interner_matches_mutable_interning_without_touching_the_pool() {
        let mut pool = StringPool::new();
        let resident = pool.intern_set(["blast", "search", "protein"]);
        let pool_len = pool.len();

        // A mutable clone is the reference for what interning *would* do.
        let mut reference_pool = pool.clone();
        let reference = reference_pool.intern_set(["blast", "kegg", "pathway", "kegg"]);

        let mut frozen = FrozenInterner::new(&pool);
        let resolved = frozen.resolve_set(["blast", "kegg", "pathway", "kegg"]);
        assert_eq!(pool.len(), pool_len, "frozen resolution must not intern");
        assert_eq!(frozen.fresh_count(), 2);
        assert_eq!(resolved.len(), reference.len());
        assert_eq!(
            resolved.intersection_len(&resident),
            reference.intersection_len(&resident)
        );
        assert_eq!(resolved.jaccard(&resident), reference.jaccard(&resident));

        // Fresh ids are stable across later calls on the same interner.
        let again = frozen.resolve_set(["kegg"]);
        assert_eq!(again.intersection_len(&resolved), 1);
        // ... and never collide with pool ids.
        assert!(resolved
            .ids()
            .iter()
            .all(|&id| { pool.resolve(id).is_some() || id as usize >= pool_len }));
    }

    #[test]
    fn intersection_len_by_merge() {
        let a = TokenIdSet::from_ids(vec![5, 1, 3, 3]);
        let b = TokenIdSet::from_ids(vec![3, 4, 5, 9]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(b.intersection_len(&a), 2);
        assert_eq!(a.intersection_len(&TokenIdSet::default()), 0);
    }

    /// Deterministic pseudo-random sorted set (xorshift) for kernel tests.
    fn pseudo_set(seed: u64, len: usize, universe: u32) -> Vec<u32> {
        let mut state = seed | 1;
        let mut ids: Vec<u32> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % u64::from(universe.max(1))) as u32
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    #[test]
    fn word_batched_and_galloping_paths_match_the_scalar_merge() {
        // Sweep size skews so both the word path and the gallop path run,
        // plus boundary shapes (empty, disjoint ranges, identical sets).
        let shapes: &[(usize, usize, u32)] = &[
            (0, 0, 10),
            (0, 40, 10),
            (1, 1, 4),
            (3, 400, 1000),   // gallop: 400 ≥ 16 × 3
            (5, 64, 200),     // words: below the gallop ratio
            (33, 47, 90),     // dense overlap, odd lengths
            (64, 64, 70),     // near-identical sets, even lengths
            (2, 1000, 5000),  // deep gallop
            (128, 129, 4000), // sparse overlap
        ];
        for (case, &(la, lb, universe)) in shapes.iter().enumerate() {
            let a = pseudo_set(0x9E37 + case as u64, la, universe);
            let b = pseudo_set(0x85EB + 3 * case as u64, lb, universe);
            let reference = intersect_sorted_scalar(&a, &b);
            assert_eq!(intersect_sorted(&a, &b), reference, "case {case} a∩b");
            assert_eq!(intersect_sorted(&b, &a), reference, "case {case} b∩a");
            assert_eq!(intersect_words(&a, &b), reference, "case {case} words");
            let (small, large) = if la <= lb { (&a, &b) } else { (&b, &a) };
            assert_eq!(
                intersect_gallop(small, large),
                reference,
                "case {case} gallop"
            );
        }
        // Range-disjoint short circuit.
        assert_eq!(intersect_sorted(&[1, 2, 3], &[10, 20]), 0);
        assert_eq!(intersect_sorted(&[10, 20], &[1, 2, 3]), 0);
    }

    #[test]
    fn jaccard_sorted_keeps_the_empty_empty_convention() {
        assert_eq!(jaccard_sorted(&[], &[]), 1.0);
        assert_eq!(jaccard_sorted(&[1], &[]), 0.0);
        assert_eq!(jaccard_sorted(&[1, 2], &[2, 3]), 1.0 / 3.0);
    }
}
