//! Corpus-wide string interning and interned token sets.
//!
//! Repository-scale scoring compares the same texts millions of times; the
//! profiled engine therefore tokenizes each text once, interns the tokens
//! in a corpus-wide [`StringPool`], and keeps the distinct token ids as a
//! sorted [`TokenIdSet`].  Set comparisons then become `O(a + b)` merges
//! over dense `u32` ids — no hashing, no string comparisons, no
//! allocation — and produce exactly the same counts (and therefore exactly
//! the same similarity values) as the string-based [`crate::jaccard_index`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A corpus-wide string interner: every distinct token string maps to a
/// dense `u32` id.
#[derive(Debug, Clone, Default)]
pub struct StringPool {
    ids: BTreeMap<String, u32>,
    strings: Vec<String>,
}

impl StringPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        StringPool::default()
    }

    /// Reconstructs a pool from its strings in id order (the inverse of
    /// [`StringPool::strings`]) — the snapshot-loading path: token `i` of
    /// `strings` is assigned id `i`, so every id recorded before the
    /// snapshot resolves to the same token afterwards.
    pub fn from_strings(strings: Vec<String>) -> Self {
        let ids = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        StringPool { ids, strings }
    }

    /// The interned strings in id order (`strings()[id]` is the token of
    /// `id`) — the serializable representation of the pool.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Interns a token, returning its id (allocating a new id for unseen
    /// tokens).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(token.to_string(), id);
        self.strings.push(token.to_string());
        id
    }

    /// The id of an already interned token, if any.
    pub fn lookup(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token string behind an id.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns every token of an iterator and returns the *distinct* ids,
    /// sorted ascending — the canonical [`TokenIdSet`] representation.
    pub fn intern_set<I, S>(&mut self, tokens: I) -> TokenIdSet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ids: Vec<u32> = tokens
            .into_iter()
            .map(|t| self.intern(t.as_ref()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        TokenIdSet { ids }
    }
}

/// Resolves tokens against a *frozen* [`StringPool`] without mutating it.
///
/// Known tokens map to their interned pool ids; unknown tokens are assigned
/// fresh ephemeral ids past the end of the pool (`pool.len() + i`, in
/// first-occurrence order), shared across every `resolve_set` call on the
/// same interner.  The resulting [`TokenIdSet`]s compare against any set
/// interned in the pool exactly as if the tokens had been interned mutably:
/// equal strings share an id, distinct strings never collide — so
/// intersection counts, set sizes, and therefore every Jaccard value are
/// bit-identical.  This is the query-side interning of a sharded corpus: a
/// search must profile its query against each shard's pool while concurrent
/// readers share that pool immutably.
pub struct FrozenInterner<'p> {
    pool: &'p StringPool,
    fresh: BTreeMap<String, u32>,
}

impl<'p> FrozenInterner<'p> {
    /// A resolver over a frozen pool.
    pub fn new(pool: &'p StringPool) -> Self {
        FrozenInterner {
            pool,
            fresh: BTreeMap::new(),
        }
    }

    /// The id of a token: its pool id if interned, otherwise a stable
    /// ephemeral id shared by every later occurrence on this interner.
    pub fn resolve(&mut self, token: &str) -> u32 {
        if let Some(id) = self.pool.lookup(token) {
            return id;
        }
        if let Some(&id) = self.fresh.get(token) {
            return id;
        }
        let id = (self.pool.len() + self.fresh.len()) as u32;
        self.fresh.insert(token.to_string(), id);
        id
    }

    /// [`StringPool::intern_set`] against the frozen pool: the distinct
    /// resolved ids, sorted ascending.
    pub fn resolve_set<I, S>(&mut self, tokens: I) -> TokenIdSet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        TokenIdSet::from_ids(
            tokens
                .into_iter()
                .map(|t| self.resolve(t.as_ref()))
                .collect(),
        )
    }

    /// Number of tokens not found in the underlying pool so far.
    pub fn fresh_count(&self) -> usize {
        self.fresh.len()
    }
}

/// A set of interned token ids, stored sorted and deduplicated.
///
/// The serde representation is the sorted id vector itself; deserialization
/// re-normalises (sorts and dedups), so hand-edited snapshots cannot break
/// the ordering invariant the merge algorithms rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenIdSet {
    ids: Vec<u32>,
}

impl Serialize for TokenIdSet {
    fn serialize_value(&self) -> serde::Value {
        self.ids.serialize_value()
    }
}

impl Deserialize for TokenIdSet {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TokenIdSet::from_ids(Vec::<u32>::deserialize_value(value)?))
    }
}

impl TokenIdSet {
    /// Builds a set from arbitrary ids (sorting and deduplicating).
    pub fn from_ids(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        TokenIdSet { ids }
    }

    /// The sorted distinct ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for the empty set.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Size of the intersection with another set, by sorted merge.
    // lint:hot the innermost comparison of every token-set similarity;
    // wfsim_lint forbids lock acquisition and heap allocation here.
    pub fn intersection_len(&self, other: &TokenIdSet) -> usize {
        let (mut i, mut j, mut common) = (0, 0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        common
    }

    /// The Jaccard index `|A ∩ B| / |A ∪ B|` in a single `O(a + b)` merge.
    ///
    /// Matches [`crate::jaccard_index`] exactly, including the convention
    /// that two empty sets have similarity 1.
    // lint:hot called once per scored candidate pair on module-similarity
    // paths; must stay allocation- and lock-free.
    pub fn jaccard(&self, other: &TokenIdSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        let intersection = self.intersection_len(other);
        let union = self.len() + other.len() - intersection;
        intersection as f64 / union as f64
    }

    /// An admissible upper bound on [`TokenIdSet::jaccard`] computable from
    /// the set sizes alone: `min(|A|, |B|) / max(|A|, |B|)`.
    pub fn jaccard_size_bound(&self, other: &TokenIdSet) -> f64 {
        let (a, b) = (self.len(), other.len());
        if a == 0 && b == 0 {
            return 1.0;
        }
        if a == 0 || b == 0 {
            return 0.0;
        }
        a.min(b) as f64 / a.max(b) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard_index;
    use crate::tokenize;

    #[test]
    fn interning_assigns_stable_dense_ids() {
        let mut pool = StringPool::new();
        let a = pool.intern("blast");
        let b = pool.intern("search");
        assert_eq!(pool.intern("blast"), a);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.lookup("search"), Some(b));
        assert_eq!(pool.lookup("missing"), None);
        assert_eq!(pool.resolve(a), Some("blast"));
        assert!(StringPool::new().is_empty());
    }

    #[test]
    fn intern_set_sorts_and_dedups() {
        let mut pool = StringPool::new();
        let set = pool.intern_set(["b", "a", "b", "c"]);
        assert_eq!(set.len(), 3);
        let ids = set.ids();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_jaccard_matches_the_string_based_jaccard() {
        let texts = [
            ("KEGG pathway analysis", "pathway analysis for genes"),
            ("", ""),
            ("blast", ""),
            ("a b c d", "c d e f g"),
            ("same same same", "same"),
        ];
        let mut pool = StringPool::new();
        for (ta, tb) in texts {
            let (toks_a, toks_b) = (tokenize(ta), tokenize(tb));
            let (sa, sb) = (pool.intern_set(&toks_a), pool.intern_set(&toks_b));
            assert_eq!(
                sa.jaccard(&sb),
                jaccard_index(&toks_a, &toks_b),
                "{ta:?} vs {tb:?}"
            );
        }
    }

    #[test]
    fn size_bound_dominates_the_exact_jaccard() {
        let mut pool = StringPool::new();
        let cases = [
            (vec!["a", "b", "c"], vec!["b", "c", "d", "e"]),
            (vec![], vec![]),
            (vec!["x"], vec![]),
            (vec!["x", "y"], vec!["x", "y"]),
        ];
        for (ta, tb) in cases {
            let sa = pool.intern_set(ta.iter());
            let sb = pool.intern_set(tb.iter());
            assert!(sa.jaccard_size_bound(&sb) + 1e-12 >= sa.jaccard(&sb));
        }
    }

    #[test]
    fn frozen_interner_matches_mutable_interning_without_touching_the_pool() {
        let mut pool = StringPool::new();
        let resident = pool.intern_set(["blast", "search", "protein"]);
        let pool_len = pool.len();

        // A mutable clone is the reference for what interning *would* do.
        let mut reference_pool = pool.clone();
        let reference = reference_pool.intern_set(["blast", "kegg", "pathway", "kegg"]);

        let mut frozen = FrozenInterner::new(&pool);
        let resolved = frozen.resolve_set(["blast", "kegg", "pathway", "kegg"]);
        assert_eq!(pool.len(), pool_len, "frozen resolution must not intern");
        assert_eq!(frozen.fresh_count(), 2);
        assert_eq!(resolved.len(), reference.len());
        assert_eq!(
            resolved.intersection_len(&resident),
            reference.intersection_len(&resident)
        );
        assert_eq!(resolved.jaccard(&resident), reference.jaccard(&resident));

        // Fresh ids are stable across later calls on the same interner.
        let again = frozen.resolve_set(["kegg"]);
        assert_eq!(again.intersection_len(&resolved), 1);
        // ... and never collide with pool ids.
        assert!(resolved
            .ids()
            .iter()
            .all(|&id| { pool.resolve(id).is_some() || id as usize >= pool_len }));
    }

    #[test]
    fn intersection_len_by_merge() {
        let a = TokenIdSet::from_ids(vec![5, 1, 3, 3]);
        let b = TokenIdSet::from_ids(vec![3, 4, 5, 9]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(b.intersection_len(&a), 2);
        assert_eq!(a.intersection_len(&TokenIdSet::default()), 0);
    }
}
