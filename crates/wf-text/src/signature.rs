//! Character-frequency signatures: constant-size lower bounds for the
//! Levenshtein distance.
//!
//! Every edit operation changes the character multiset of a string by a
//! bounded amount: an insertion or deletion shifts one character count by
//! one, a substitution shifts two.  The L1 distance `D` between the two
//! character histograms therefore satisfies `d >= ceil(D / 2)`, and the
//! length difference independently forces `d >= ||a| - |b||`.  Folding the
//! histogram into a fixed number of bins only ever *shrinks* `D` (clamping
//! and merging are contractions), so the binned bound stays admissible.
//!
//! A [`CharSignature`] is 64 saturating byte counters — cheap to build
//! once per corpus string and cheap to difference per candidate pair —
//! giving the upper-bound pruning search a far tighter estimate of label
//! similarity than lengths alone.

use serde::{Deserialize, Serialize};

/// Number of histogram bins (characters are folded by code point).
const BINS: usize = 64;

/// A fixed-size character-frequency signature of a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharSignature {
    bins: [u8; BINS],
    chars: u32,
}

impl Default for CharSignature {
    fn default() -> Self {
        CharSignature {
            bins: [0; BINS],
            chars: 0,
        }
    }
}

// Fixed-size arrays have no vendored-serde impl, so the signature
// serializes by hand as `{"bins": [..64 counters..], "chars": n}`.
impl Serialize for CharSignature {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("bins".to_string(), self.bins.as_slice().serialize_value()),
            ("chars".to_string(), self.chars.serialize_value()),
        ])
    }
}

impl Deserialize for CharSignature {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let bins_value = value
            .get_field("bins")
            .ok_or_else(|| serde::Error::missing_field("CharSignature", "bins"))?;
        let bins_vec = Vec::<u8>::deserialize_value(bins_value)?;
        let bins: [u8; BINS] = bins_vec
            .try_into()
            .map_err(|v: Vec<u8>| serde::Error(format!("expected {BINS} bins, got {}", v.len())))?;
        let chars = value
            .get_field("chars")
            .ok_or_else(|| serde::Error::missing_field("CharSignature", "chars"))
            .and_then(u32::deserialize_value)?;
        Ok(CharSignature { bins, chars })
    }
}

impl CharSignature {
    /// Builds the signature of a string (one pass, no allocation).
    pub fn of(text: &str) -> Self {
        let mut sig = CharSignature::default();
        for c in text.chars() {
            let bin = (c as u32 as usize) % BINS;
            sig.bins[bin] = sig.bins[bin].saturating_add(1);
            sig.chars += 1;
        }
        sig
    }

    /// The number of scalar values counted into the signature.
    pub fn char_count(&self) -> usize {
        self.chars as usize
    }

    /// A lower bound on `levenshtein(a, b)` from the signatures alone:
    /// `max(||a| - |b||, ceil(L1(histogram_a, histogram_b) / 2))`.
    ///
    /// The L1 loop is deliberately the plainest possible per-bin form:
    /// over a fixed-size `[u8; 64]` pair LLVM auto-vectorizes it into
    /// packed absolute-difference + horizontal-sum SIMD, which measured
    /// ~2× faster than a hand-written SWAR (u64-lane) variant in
    /// `wfsim_kernels` — keep it simple so the vectorizer keeps firing.
    // lint:hot evaluated once per candidate pair per Levenshtein-rule
    // bound; wfsim_lint forbids lock acquisition and heap allocation.
    pub fn distance_lower_bound(&self, other: &CharSignature) -> usize {
        let mut l1 = 0u32;
        for (x, y) in self.bins.iter().zip(other.bins.iter()) {
            l1 += u32::from(x.abs_diff(*y));
        }
        let length_bound = self.chars.abs_diff(other.chars);
        length_bound.max(l1.div_ceil(2)) as usize
    }

    /// An admissible upper bound on the *normalized* Levenshtein
    /// similarity `1 - d / max(|a|, |b|)` of the two underlying strings.
    pub fn similarity_upper_bound(&self, other: &CharSignature) -> f64 {
        let max_len = self.chars.max(other.chars);
        if max_len == 0 {
            return 1.0;
        }
        let bound = 1.0 - self.distance_lower_bound(other) as f64 / f64::from(max_len);
        bound.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::{levenshtein, levenshtein_similarity};

    #[test]
    fn identical_strings_have_zero_lower_bound() {
        let s = CharSignature::of("blast_search");
        assert_eq!(s.distance_lower_bound(&s.clone()), 0);
        assert_eq!(s.similarity_upper_bound(&s.clone()), 1.0);
        assert_eq!(s.char_count(), 12);
    }

    #[test]
    fn empty_strings_are_identical() {
        let e = CharSignature::of("");
        assert_eq!(e.similarity_upper_bound(&e.clone()), 1.0);
        let s = CharSignature::of("abc");
        assert_eq!(e.distance_lower_bound(&s), 3);
        assert_eq!(s.similarity_upper_bound(&e), 0.0);
    }

    #[test]
    fn lower_bound_never_exceeds_the_true_distance() {
        let words = [
            "",
            "a",
            "blast",
            "blastp",
            "get_pathway",
            "aggregate_daily_observations",
            "render_report",
            "tropical fish",
            "αβγδ unicode",
            "ΑΒΓΔ UNICODE",
        ];
        for a in words {
            for b in words {
                let (sa, sb) = (CharSignature::of(a), CharSignature::of(b));
                let bound = sa.distance_lower_bound(&sb);
                let true_d = levenshtein(a, b);
                assert!(
                    bound <= true_d,
                    "{a:?} vs {b:?}: bound {bound} > d {true_d}"
                );
                assert!(
                    sa.similarity_upper_bound(&sb) + 1e-12 >= levenshtein_similarity(a, b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn disjoint_alphabets_give_strong_bounds() {
        let a = CharSignature::of("aaaa");
        let b = CharSignature::of("bbbb");
        // Four substitutions at least: L1 = 8, bound = 4.
        assert_eq!(a.distance_lower_bound(&b), 4);
        assert_eq!(a.similarity_upper_bound(&b), 0.0);
    }

    #[test]
    fn saturation_keeps_the_bound_admissible() {
        let long = "x".repeat(1000);
        let short = "x".repeat(300);
        let (sl, ss) = (CharSignature::of(&long), CharSignature::of(&short));
        let bound = sl.distance_lower_bound(&ss);
        assert!(bound <= levenshtein(&long, &short));
        assert_eq!(bound, 700, "length bound still applies past saturation");
    }
}
