//! A small line-oriented text format ("wfl") for workflows.
//!
//! The paper transformed myExperiment RDF and Galaxy JSON into "a custom
//! graph format for easier handling" (Section 4.1).  This module provides an
//! equivalent: a dependency-free, human-readable format that examples and
//! tests can embed as string literals, and that survives round trips.
//!
//! ```text
//! workflow 1189
//! title KEGG pathway analysis
//! description Retrieves a pathway and maps genes
//! tag kegg
//! tag pathway
//! author alice
//! module get_pathway wsdl
//!   description fetch pathway
//!   authority kegg.jp
//!   service get_pathway_by_id
//!   uri http://kegg.jp/ws
//!   param organism=hsa
//! module map_genes beanshell
//!   script return genes;
//! link get_pathway -> map_genes
//! ```
//!
//! * one `workflow <id>` header,
//! * workflow-level annotation lines (`title`, `description`, `tag`,
//!   `author`),
//! * `module <label> <type>` lines followed by indented attribute lines,
//! * `link <from-label> -> <to-label>` lines.
//!
//! Labels may not contain whitespace (the corpus generator and the builder
//! use underscore-separated labels, as real Taverna workflows commonly do).

use std::error::Error;
use std::fmt;

use crate::builder::WorkflowBuilder;
use crate::module::ModuleType;
use crate::validate::ValidationError;
use crate::workflow::Workflow;

/// Errors produced when parsing the wfl text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The input did not start with a `workflow <id>` header.
    MissingHeader,
    /// A line could not be interpreted.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// An attribute line appeared before any `module` line.
    AttributeOutsideModule {
        /// 1-based line number.
        line: usize,
    },
    /// The assembled workflow failed validation.
    Invalid(ValidationError),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::MissingHeader => {
                write!(f, "input must start with a 'workflow <id>' header")
            }
            FormatError::Malformed { line, content } => {
                write!(f, "line {line}: cannot parse '{content}'")
            }
            FormatError::AttributeOutsideModule { line } => {
                write!(f, "line {line}: attribute line outside of a module block")
            }
            FormatError::Invalid(e) => write!(f, "parsed workflow is invalid: {e}"),
        }
    }
}

impl Error for FormatError {}

impl From<ValidationError> for FormatError {
    fn from(value: ValidationError) -> Self {
        FormatError::Invalid(value)
    }
}

/// Serialises a workflow into the wfl text format.
pub fn to_wfl(wf: &Workflow) -> String {
    let mut out = String::new();
    out.push_str(&format!("workflow {}\n", wf.id));
    if let Some(t) = &wf.annotations.title {
        out.push_str(&format!("title {t}\n"));
    }
    if let Some(d) = &wf.annotations.description {
        out.push_str(&format!("description {d}\n"));
    }
    for tag in &wf.annotations.tags {
        out.push_str(&format!("tag {tag}\n"));
    }
    if let Some(a) = &wf.annotations.author {
        out.push_str(&format!("author {a}\n"));
    }
    for m in &wf.modules {
        out.push_str(&format!("module {} {}\n", m.label, m.module_type.as_str()));
        if let Some(d) = &m.description {
            out.push_str(&format!("  description {d}\n"));
        }
        if let Some(s) = &m.script {
            // Scripts are flattened to a single line; newlines are escaped.
            out.push_str(&format!("  script {}\n", s.replace('\n', "\\n")));
        }
        if let Some(a) = &m.service_authority {
            out.push_str(&format!("  authority {a}\n"));
        }
        if let Some(n) = &m.service_name {
            out.push_str(&format!("  service {n}\n"));
        }
        if let Some(u) = &m.service_uri {
            out.push_str(&format!("  uri {u}\n"));
        }
        for (k, v) in &m.parameters {
            out.push_str(&format!("  param {k}={v}\n"));
        }
    }
    for l in &wf.links {
        let from = &wf.modules[l.from.index()].label;
        let to = &wf.modules[l.to.index()].label;
        out.push_str(&format!("link {from} -> {to}\n"));
    }
    out
}

/// Parses a workflow from the wfl text format.
pub fn from_wfl(text: &str) -> Result<Workflow, FormatError> {
    #[derive(Default)]
    struct PendingModule {
        label: String,
        module_type: Option<ModuleType>,
        description: Option<String>,
        script: Option<String>,
        authority: Option<String>,
        service: Option<String>,
        uri: Option<String>,
        params: Vec<(String, String)>,
    }

    let mut lines = text.lines().enumerate();
    let header = lines
        .by_ref()
        .map(|(i, l)| (i, l.trim()))
        .find(|(_, l)| !l.is_empty());
    let (_, header) = header.ok_or(FormatError::MissingHeader)?;
    let id = header
        .strip_prefix("workflow ")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or(FormatError::MissingHeader)?;

    let mut builder = WorkflowBuilder::new(id);
    let mut pending: Option<PendingModule> = None;
    let mut links: Vec<(String, String)> = Vec::new();

    fn flush(builder: WorkflowBuilder, pending: &mut Option<PendingModule>) -> WorkflowBuilder {
        if let Some(p) = pending.take() {
            let ty = p.module_type.unwrap_or(ModuleType::Other("unknown".into()));
            builder.module(p.label.clone(), ty, move |mut mb| {
                if let Some(d) = p.description {
                    mb = mb.description(d);
                }
                if let Some(s) = p.script {
                    mb = mb.script(s.replace("\\n", "\n"));
                }
                if let Some(a) = p.authority {
                    mb = mb.service_authority(a);
                }
                if let Some(n) = p.service {
                    mb = mb.service_name(n);
                }
                if let Some(u) = p.uri {
                    mb = mb.service_uri(u);
                }
                for (k, v) in p.params {
                    mb = mb.parameter(k, v);
                }
                mb
            })
        } else {
            builder
        }
    }

    for (lineno, raw) in lines {
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let indented = line.starts_with(' ') || line.starts_with('\t');
        let trimmed = line.trim();
        let (keyword, rest) = match trimmed.split_once(' ') {
            Some((k, r)) => (k, r.trim()),
            None => (trimmed, ""),
        };
        if indented {
            let Some(p) = pending.as_mut() else {
                return Err(FormatError::AttributeOutsideModule { line: lineno + 1 });
            };
            match keyword {
                "description" => p.description = Some(rest.to_string()),
                "script" => p.script = Some(rest.to_string()),
                "authority" => p.authority = Some(rest.to_string()),
                "service" => p.service = Some(rest.to_string()),
                "uri" => p.uri = Some(rest.to_string()),
                "param" => {
                    let (k, v) = rest.split_once('=').ok_or_else(|| FormatError::Malformed {
                        line: lineno + 1,
                        content: line.to_string(),
                    })?;
                    p.params.push((k.trim().to_string(), v.trim().to_string()));
                }
                _ => {
                    return Err(FormatError::Malformed {
                        line: lineno + 1,
                        content: line.to_string(),
                    })
                }
            }
            continue;
        }
        match keyword {
            "title" => {
                builder = flush(builder, &mut pending).title(rest);
            }
            "description" => {
                builder = flush(builder, &mut pending).description(rest);
            }
            "tag" => {
                builder = flush(builder, &mut pending).tag(rest);
            }
            "author" => {
                builder = flush(builder, &mut pending).author(rest);
            }
            "module" => {
                builder = flush(builder, &mut pending);
                let (label, ty) = rest.split_once(' ').ok_or_else(|| FormatError::Malformed {
                    line: lineno + 1,
                    content: line.to_string(),
                })?;
                pending = Some(PendingModule {
                    label: label.trim().to_string(),
                    module_type: Some(ModuleType::parse(ty.trim())),
                    ..PendingModule::default()
                });
            }
            "link" => {
                builder = flush(builder, &mut pending);
                let (from, to) = rest
                    .split_once("->")
                    .ok_or_else(|| FormatError::Malformed {
                        line: lineno + 1,
                        content: line.to_string(),
                    })?;
                links.push((from.trim().to_string(), to.trim().to_string()));
            }
            _ => {
                return Err(FormatError::Malformed {
                    line: lineno + 1,
                    content: line.to_string(),
                })
            }
        }
    }
    builder = flush(builder, &mut pending);
    for (from, to) in links {
        builder = builder.link(from, to);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::module::ModuleType;

    fn sample() -> Workflow {
        WorkflowBuilder::new("1189")
            .title("KEGG pathway analysis")
            .description("Retrieves a pathway and maps genes")
            .tag("kegg")
            .tag("pathway")
            .author("alice")
            .module("get_pathway", ModuleType::WsdlService, |m| {
                m.description("fetch pathway")
                    .service("kegg.jp", "get_pathway_by_id", "http://kegg.jp/ws")
                    .parameter("organism", "hsa")
            })
            .module("map_genes", ModuleType::BeanshellScript, |m| {
                m.script("line1\nline2")
            })
            .link("get_pathway", "map_genes")
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_workflow() {
        let wf = sample();
        let text = to_wfl(&wf);
        let parsed = from_wfl(&text).unwrap();
        assert_eq!(parsed, wf);
    }

    #[test]
    fn parses_minimal_workflow() {
        let wf = from_wfl("workflow w1\nmodule a wsdl\n").unwrap();
        assert_eq!(wf.module_count(), 1);
        assert_eq!(wf.modules[0].module_type, ModuleType::WsdlService);
    }

    #[test]
    fn missing_header_is_an_error() {
        assert_eq!(from_wfl("module a wsdl\n"), Err(FormatError::MissingHeader));
        assert_eq!(from_wfl(""), Err(FormatError::MissingHeader));
        assert_eq!(from_wfl("workflow \n"), Err(FormatError::MissingHeader));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let err = from_wfl("workflow w\nmodule a wsdl\nnonsense here\n").unwrap_err();
        assert!(matches!(err, FormatError::Malformed { line: 3, .. }));
    }

    #[test]
    fn attribute_outside_module_is_rejected() {
        let err = from_wfl("workflow w\n  authority kegg.jp\n").unwrap_err();
        assert!(matches!(
            err,
            FormatError::AttributeOutsideModule { line: 2 }
        ));
    }

    #[test]
    fn malformed_param_is_rejected() {
        let err = from_wfl("workflow w\nmodule a wsdl\n  param broken\n").unwrap_err();
        assert!(matches!(err, FormatError::Malformed { line: 3, .. }));
    }

    #[test]
    fn invalid_structure_is_reported() {
        let text = "workflow w\nmodule a wsdl\nmodule b wsdl\nlink a -> b\nlink b -> a\n";
        let err = from_wfl(text).unwrap_err();
        assert!(matches!(err, FormatError::Invalid(ValidationError::Cyclic)));
    }

    #[test]
    fn link_to_unknown_label_is_reported() {
        let err = from_wfl("workflow w\nmodule a wsdl\nlink a -> ghost\n").unwrap_err();
        assert!(matches!(
            err,
            FormatError::Invalid(ValidationError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn blank_lines_and_trailing_whitespace_are_tolerated() {
        let text = "\n\nworkflow w\n\nmodule a wsdl   \n\nmodule b local\nlink a -> b\n\n";
        let wf = from_wfl(text).unwrap();
        assert_eq!(wf.module_count(), 2);
        assert_eq!(wf.link_count(), 1);
    }
}
