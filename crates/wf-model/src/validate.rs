//! Structural validation of workflows.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::module::ModuleId;
use crate::workflow::Workflow;

/// Structural problems a workflow can exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A module id stored in a module does not match its position in the
    /// module vector.
    MisnumberedModule {
        /// Position in the vector.
        expected: ModuleId,
        /// Id stored in the module.
        found: ModuleId,
    },
    /// Two modules share the same label (labels must be unique because links
    /// and corpus mutations address modules by label).
    DuplicateLabel {
        /// The offending label.
        label: String,
        /// The first module carrying it.
        first: ModuleId,
        /// The second module carrying it.
        second: ModuleId,
    },
    /// A datalink references a module id outside the module vector.
    DanglingLink {
        /// The offending endpoint.
        endpoint: ModuleId,
    },
    /// A datalink connects a module to itself.
    SelfLoop {
        /// The module with the self loop.
        module: ModuleId,
    },
    /// The datalink structure contains a directed cycle.
    Cyclic,
    /// A label used in a builder link does not exist.
    UnknownLabel {
        /// The unresolved label.
        label: String,
    },
    /// The workflow id is empty.
    EmptyId,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MisnumberedModule { expected, found } => write!(
                f,
                "module at position {expected} carries id {found}; ids must be dense and in order"
            ),
            ValidationError::DuplicateLabel {
                label,
                first,
                second,
            } => write!(f, "label '{label}' is used by both {first} and {second}"),
            ValidationError::DanglingLink { endpoint } => {
                write!(f, "datalink references unknown module {endpoint}")
            }
            ValidationError::SelfLoop { module } => {
                write!(f, "datalink connects module {module} to itself")
            }
            ValidationError::Cyclic => write!(f, "the datalink structure contains a cycle"),
            ValidationError::UnknownLabel { label } => {
                write!(f, "link references unknown module label '{label}'")
            }
            ValidationError::EmptyId => write!(f, "workflow id must not be empty"),
        }
    }
}

impl Error for ValidationError {}

/// Validates the structural invariants of a workflow:
///
/// 1. the workflow id is non-empty,
/// 2. module ids are dense and match their positions,
/// 3. module labels are unique,
/// 4. all datalink endpoints exist,
/// 5. there are no self loops,
/// 6. the datalink structure is acyclic.
pub fn validate(wf: &Workflow) -> Result<(), ValidationError> {
    if wf.id.as_str().is_empty() {
        return Err(ValidationError::EmptyId);
    }
    for (idx, m) in wf.modules.iter().enumerate() {
        let expected = ModuleId(idx as u32);
        if m.id != expected {
            return Err(ValidationError::MisnumberedModule {
                expected,
                found: m.id,
            });
        }
    }
    let mut labels: BTreeSet<&str> = BTreeSet::new();
    for m in &wf.modules {
        if !labels.insert(m.label.as_str()) {
            let first = wf
                .modules
                .iter()
                .find(|other| other.label == m.label)
                .map(|other| other.id)
                .unwrap_or(m.id);
            return Err(ValidationError::DuplicateLabel {
                label: m.label.clone(),
                first,
                second: m.id,
            });
        }
    }
    let n = wf.module_count();
    for l in &wf.links {
        for endpoint in [l.from, l.to] {
            if endpoint.index() >= n {
                return Err(ValidationError::DanglingLink { endpoint });
            }
        }
        if l.is_self_loop() {
            return Err(ValidationError::SelfLoop { module: l.from });
        }
    }
    if !wf.graph().is_acyclic() {
        return Err(ValidationError::Cyclic);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalink::Datalink;
    use crate::module::{Module, ModuleType};

    fn valid_workflow() -> Workflow {
        let mut wf = Workflow::new("ok");
        wf.modules
            .push(Module::new(ModuleId(0), "a", ModuleType::WsdlService));
        wf.modules
            .push(Module::new(ModuleId(1), "b", ModuleType::WsdlService));
        wf.links.push(Datalink::new(ModuleId(0), ModuleId(1)));
        wf
    }

    #[test]
    fn accepts_valid_workflow() {
        assert!(validate(&valid_workflow()).is_ok());
    }

    #[test]
    fn rejects_empty_id() {
        let mut wf = valid_workflow();
        wf.id = crate::workflow::WorkflowId::new("");
        assert_eq!(validate(&wf), Err(ValidationError::EmptyId));
    }

    #[test]
    fn rejects_misnumbered_modules() {
        let mut wf = valid_workflow();
        wf.modules[1].id = ModuleId(5);
        assert!(matches!(
            validate(&wf),
            Err(ValidationError::MisnumberedModule { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let mut wf = valid_workflow();
        wf.modules[1].label = "a".into();
        assert!(matches!(
            validate(&wf),
            Err(ValidationError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn rejects_dangling_links() {
        let mut wf = valid_workflow();
        wf.links.push(Datalink::new(ModuleId(0), ModuleId(9)));
        assert_eq!(
            validate(&wf),
            Err(ValidationError::DanglingLink {
                endpoint: ModuleId(9)
            })
        );
    }

    #[test]
    fn rejects_self_loops() {
        let mut wf = valid_workflow();
        wf.links.push(Datalink::new(ModuleId(1), ModuleId(1)));
        assert_eq!(
            validate(&wf),
            Err(ValidationError::SelfLoop {
                module: ModuleId(1)
            })
        );
    }

    #[test]
    fn rejects_cycles() {
        let mut wf = valid_workflow();
        wf.links.push(Datalink::new(ModuleId(1), ModuleId(0)));
        assert_eq!(validate(&wf), Err(ValidationError::Cyclic));
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ValidationError::DanglingLink {
            endpoint: ModuleId(7),
        }
        .to_string();
        assert!(msg.contains("m7"));
        let msg = ValidationError::DuplicateLabel {
            label: "x".into(),
            first: ModuleId(0),
            second: ModuleId(1),
        }
        .to_string();
        assert!(msg.contains("'x'"));
    }
}
