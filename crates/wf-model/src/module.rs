//! Data processing modules: the nodes of a scientific workflow DAG.
//!
//! The paper (Section 1 and 2.1.1) lists the attributes a module may carry:
//! a *label* given by the workflow author, a *type* of operation, an optional
//! free-text *description*, an optional *script* body for scripted modules,
//! web-service related properties (*authority name*, *service name*,
//! *service URI*) for service-invoking modules, and a set of static,
//! data-independent *parameters*.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::attribute::{AttributeKey, AttributeValue};

/// Index of a module inside a single workflow.
///
/// `ModuleId`s are dense indices (`0..workflow.module_count()`); they are
/// only meaningful relative to the workflow that owns the module.  Datalinks
/// and module mappings refer to modules through this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ModuleId(pub u32);

impl ModuleId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for ModuleId {
    fn from(value: u32) -> Self {
        ModuleId(value)
    }
}

/// The technical type of the operation a module performs.
///
/// The variants follow the Taverna module ("processor") types observed in the
/// myExperiment corpus as categorised by Wassink et al. (reference \[37\] of
/// the paper), plus a Galaxy tool type and an escape hatch for anything else.
/// The paper's *type equivalence classes* (Section 2.1.5) group these types
/// into coarser technical classes; that grouping lives in
/// `wf-repo::type_classes`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModuleType {
    /// A WSDL-described SOAP web service invocation (`wsdl`).
    WsdlService,
    /// A WSDL service invoked through the Soaplab wrapper (`soaplabwsdl`).
    SoaplabService,
    /// An "arbitrary" WSDL service (`arbitrarywsdl`), Taverna's generic type.
    ArbitraryWsdl,
    /// A REST/HTTP service invocation.
    RestService,
    /// A BioMart data warehouse query.
    BioMart,
    /// A BioMoby service.
    BioMoby,
    /// A Beanshell (Java) script executed locally.
    BeanshellScript,
    /// An R script executed through RShell.
    RShell,
    /// A local Java operation shipped with the workflow engine
    /// (e.g. string concatenation, list flattening).
    LocalOperation,
    /// A constant value supplied inline by the author.
    StringConstant,
    /// A nested sub-workflow (inlined during corpus import, but the type is
    /// kept for provenance).
    SubWorkflow,
    /// A workflow input port kept as a module (normally stripped on import).
    InputPort,
    /// A workflow output port kept as a module (normally stripped on import).
    OutputPort,
    /// A Galaxy tool invocation (used by the Galaxy corpus).
    GalaxyTool,
    /// Any other type, carrying the raw type identifier.
    Other(String),
}

impl ModuleType {
    /// The canonical string identifier of this type (mirrors the identifiers
    /// found in repository exports).
    pub fn as_str(&self) -> &str {
        match self {
            ModuleType::WsdlService => "wsdl",
            ModuleType::SoaplabService => "soaplabwsdl",
            ModuleType::ArbitraryWsdl => "arbitrarywsdl",
            ModuleType::RestService => "rest",
            ModuleType::BioMart => "biomart",
            ModuleType::BioMoby => "biomoby",
            ModuleType::BeanshellScript => "beanshell",
            ModuleType::RShell => "rshell",
            ModuleType::LocalOperation => "local",
            ModuleType::StringConstant => "stringconstant",
            ModuleType::SubWorkflow => "workflow",
            ModuleType::InputPort => "input",
            ModuleType::OutputPort => "output",
            ModuleType::GalaxyTool => "galaxytool",
            ModuleType::Other(s) => s.as_str(),
        }
    }

    /// Parses a raw type identifier into a [`ModuleType`].
    ///
    /// Unknown identifiers are preserved verbatim in [`ModuleType::Other`].
    pub fn parse(raw: &str) -> ModuleType {
        match raw.to_ascii_lowercase().as_str() {
            "wsdl" => ModuleType::WsdlService,
            "soaplabwsdl" => ModuleType::SoaplabService,
            "arbitrarywsdl" => ModuleType::ArbitraryWsdl,
            "rest" => ModuleType::RestService,
            "biomart" => ModuleType::BioMart,
            "biomoby" => ModuleType::BioMoby,
            "beanshell" => ModuleType::BeanshellScript,
            "rshell" => ModuleType::RShell,
            "local" => ModuleType::LocalOperation,
            "stringconstant" => ModuleType::StringConstant,
            "workflow" => ModuleType::SubWorkflow,
            "input" => ModuleType::InputPort,
            "output" => ModuleType::OutputPort,
            "galaxytool" => ModuleType::GalaxyTool,
            _ => ModuleType::Other(raw.to_string()),
        }
    }

    /// True if this module type invokes a remote (web) service.
    pub fn is_service(&self) -> bool {
        matches!(
            self,
            ModuleType::WsdlService
                | ModuleType::SoaplabService
                | ModuleType::ArbitraryWsdl
                | ModuleType::RestService
                | ModuleType::BioMart
                | ModuleType::BioMoby
        )
    }

    /// True if this module type executes an author-provided script.
    pub fn is_script(&self) -> bool {
        matches!(self, ModuleType::BeanshellScript | ModuleType::RShell)
    }

    /// True if this module type is a predefined, trivial local operation
    /// (string splitting, constants, ports, …).  These are exactly the
    /// modules the paper's *Importance Projection* removes.
    pub fn is_trivial_local(&self) -> bool {
        matches!(
            self,
            ModuleType::LocalOperation
                | ModuleType::StringConstant
                | ModuleType::InputPort
                | ModuleType::OutputPort
        )
    }
}

impl fmt::Display for ModuleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A data processing module (a node of the workflow DAG).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Dense per-workflow id of this module.
    pub id: ModuleId,
    /// The label given to this module instance by the workflow author.
    pub label: String,
    /// The technical type of the operation.
    pub module_type: ModuleType,
    /// Optional free-text description of the module.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Optional script body (for scripted module types).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub script: Option<String>,
    /// Authority (organisation) offering the invoked web service.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub service_authority: Option<String>,
    /// Name of the invoked web-service operation.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub service_name: Option<String>,
    /// URI of the invoked web service (e.g. the WSDL location).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub service_uri: Option<String>,
    /// Static, data-independent parameters of the module.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub parameters: BTreeMap<String, String>,
}

impl Module {
    /// Creates a module with the given id, label and type and no further
    /// attributes.
    pub fn new(id: ModuleId, label: impl Into<String>, module_type: ModuleType) -> Self {
        Module {
            id,
            label: label.into(),
            module_type,
            description: None,
            script: None,
            service_authority: None,
            service_name: None,
            service_uri: None,
            parameters: BTreeMap::new(),
        }
    }

    /// Returns the value of the given attribute, if the module carries it.
    ///
    /// This is the uniform attribute access used by the configurable module
    /// comparison of the similarity framework (paper Section 2.1.1): which
    /// attributes are present depends on the type of operation the module
    /// performs.
    pub fn attribute(&self, key: AttributeKey) -> Option<AttributeValue<'_>> {
        match key {
            AttributeKey::Label => Some(AttributeValue::Text(&self.label)),
            AttributeKey::Type => Some(AttributeValue::Symbol(self.module_type.as_str())),
            AttributeKey::Description => self.description.as_deref().map(AttributeValue::Text),
            AttributeKey::Script => self.script.as_deref().map(AttributeValue::Text),
            AttributeKey::ServiceAuthority => self
                .service_authority
                .as_deref()
                .map(AttributeValue::Symbol),
            AttributeKey::ServiceName => self.service_name.as_deref().map(AttributeValue::Symbol),
            AttributeKey::ServiceUri => self.service_uri.as_deref().map(AttributeValue::Symbol),
        }
    }

    /// Returns the set of attribute keys this module actually carries.
    pub fn present_attributes(&self) -> Vec<AttributeKey> {
        AttributeKey::ALL
            .iter()
            .copied()
            .filter(|k| self.attribute(*k).is_some())
            .collect()
    }

    /// True if this module is a trivial local operation (see
    /// [`ModuleType::is_trivial_local`]).
    pub fn is_trivial(&self) -> bool {
        self.module_type.is_trivial_local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_module() -> Module {
        let mut m = Module::new(ModuleId(3), "get_pathway", ModuleType::WsdlService);
        m.service_authority = Some("kegg.jp".into());
        m.service_name = Some("get_pathway_by_id".into());
        m.service_uri = Some("http://kegg.jp/ws".into());
        m
    }

    #[test]
    fn module_id_display_and_index() {
        let id = ModuleId(7);
        assert_eq!(id.to_string(), "m7");
        assert_eq!(id.index(), 7);
        assert_eq!(ModuleId::from(7u32), id);
    }

    #[test]
    fn type_parse_round_trips_known_identifiers() {
        for ty in [
            ModuleType::WsdlService,
            ModuleType::SoaplabService,
            ModuleType::ArbitraryWsdl,
            ModuleType::RestService,
            ModuleType::BioMart,
            ModuleType::BioMoby,
            ModuleType::BeanshellScript,
            ModuleType::RShell,
            ModuleType::LocalOperation,
            ModuleType::StringConstant,
            ModuleType::SubWorkflow,
            ModuleType::InputPort,
            ModuleType::OutputPort,
            ModuleType::GalaxyTool,
        ] {
            assert_eq!(ModuleType::parse(ty.as_str()), ty, "round trip {ty}");
        }
    }

    #[test]
    fn type_parse_preserves_unknown_identifier() {
        let ty = ModuleType::parse("mysterious_widget");
        assert_eq!(ty, ModuleType::Other("mysterious_widget".to_string()));
        assert_eq!(ty.as_str(), "mysterious_widget");
    }

    #[test]
    fn type_parse_is_case_insensitive_for_known_types() {
        assert_eq!(ModuleType::parse("WSDL"), ModuleType::WsdlService);
        assert_eq!(ModuleType::parse("Beanshell"), ModuleType::BeanshellScript);
    }

    #[test]
    fn service_and_script_classification() {
        assert!(ModuleType::WsdlService.is_service());
        assert!(ModuleType::SoaplabService.is_service());
        assert!(!ModuleType::BeanshellScript.is_service());
        assert!(ModuleType::BeanshellScript.is_script());
        assert!(ModuleType::RShell.is_script());
        assert!(!ModuleType::WsdlService.is_script());
    }

    #[test]
    fn trivial_local_classification_matches_importance_projection_rules() {
        assert!(ModuleType::LocalOperation.is_trivial_local());
        assert!(ModuleType::StringConstant.is_trivial_local());
        assert!(ModuleType::InputPort.is_trivial_local());
        assert!(ModuleType::OutputPort.is_trivial_local());
        assert!(!ModuleType::WsdlService.is_trivial_local());
        assert!(!ModuleType::BeanshellScript.is_trivial_local());
        assert!(!ModuleType::GalaxyTool.is_trivial_local());
    }

    #[test]
    fn attribute_access_reflects_present_attributes() {
        let m = sample_module();
        assert_eq!(
            m.attribute(AttributeKey::Label),
            Some(AttributeValue::Text("get_pathway"))
        );
        assert_eq!(
            m.attribute(AttributeKey::Type),
            Some(AttributeValue::Symbol("wsdl"))
        );
        assert_eq!(
            m.attribute(AttributeKey::ServiceAuthority),
            Some(AttributeValue::Symbol("kegg.jp"))
        );
        assert_eq!(m.attribute(AttributeKey::Script), None);
        assert_eq!(m.attribute(AttributeKey::Description), None);

        let present = m.present_attributes();
        assert!(present.contains(&AttributeKey::Label));
        assert!(present.contains(&AttributeKey::ServiceUri));
        assert!(!present.contains(&AttributeKey::Script));
    }

    #[test]
    fn trivial_module_detection() {
        let m = Module::new(ModuleId(0), "split_string", ModuleType::LocalOperation);
        assert!(m.is_trivial());
        assert!(!sample_module().is_trivial());
    }
}
