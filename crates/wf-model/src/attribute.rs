//! Uniform access to module attributes.
//!
//! The configurable module comparison of the paper (Section 2.1.1) assigns a
//! weight and a comparison method to each module attribute.  To keep that
//! configuration independent of the concrete [`crate::Module`] struct, the
//! attributes are addressed through the [`AttributeKey`] enum and their
//! values surfaced as [`AttributeValue`]s.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one of the attributes a module may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttributeKey {
    /// The author-given label of the module instance.
    Label,
    /// The technical module type.
    Type,
    /// The free-text description.
    Description,
    /// The script body of scripted modules.
    Script,
    /// The authority (organisation) of the invoked service.
    ServiceAuthority,
    /// The name of the invoked service operation.
    ServiceName,
    /// The URI of the invoked service.
    ServiceUri,
}

impl AttributeKey {
    /// All attribute keys, in a stable order.
    pub const ALL: [AttributeKey; 7] = [
        AttributeKey::Label,
        AttributeKey::Type,
        AttributeKey::Description,
        AttributeKey::Script,
        AttributeKey::ServiceAuthority,
        AttributeKey::ServiceName,
        AttributeKey::ServiceUri,
    ];

    /// A short, stable, lowercase name for the key (used in configuration
    /// files and experiment output).
    pub fn name(self) -> &'static str {
        match self {
            AttributeKey::Label => "label",
            AttributeKey::Type => "type",
            AttributeKey::Description => "description",
            AttributeKey::Script => "script",
            AttributeKey::ServiceAuthority => "service_authority",
            AttributeKey::ServiceName => "service_name",
            AttributeKey::ServiceUri => "service_uri",
        }
    }

    /// Parses an attribute name produced by [`AttributeKey::name`].
    pub fn parse(name: &str) -> Option<AttributeKey> {
        AttributeKey::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for AttributeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A borrowed attribute value together with its intended comparison flavour.
///
/// * `Text` values are free text for which an edit-distance or token based
///   comparison is meaningful (labels, descriptions, scripts).
/// * `Symbol` values are identifiers for which only exact (string) matching
///   is meaningful by default (types, authorities, service names, URIs).
///
/// The distinction only captures the *default* treatment used by the paper's
/// `pw0` configuration; individual similarity configurations may override the
/// comparison method per attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributeValue<'a> {
    /// Free text (label, description, script).
    Text(&'a str),
    /// An identifier compared by exact matching by default.
    Symbol(&'a str),
}

impl<'a> AttributeValue<'a> {
    /// The underlying string, regardless of flavour.
    pub fn as_str(&self) -> &'a str {
        match self {
            AttributeValue::Text(s) | AttributeValue::Symbol(s) => s,
        }
    }

    /// True if the value is free text.
    pub fn is_text(&self) -> bool {
        matches!(self, AttributeValue::Text(_))
    }
}

impl fmt::Display for AttributeValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_keys_have_unique_names() {
        let mut names: Vec<&str> = AttributeKey::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AttributeKey::ALL.len());
    }

    #[test]
    fn name_parse_round_trip() {
        for key in AttributeKey::ALL {
            assert_eq!(AttributeKey::parse(key.name()), Some(key));
        }
        assert_eq!(AttributeKey::parse("no_such_attribute"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AttributeKey::ServiceUri.to_string(), "service_uri");
    }

    #[test]
    fn attribute_value_accessors() {
        let t = AttributeValue::Text("hello world");
        let s = AttributeValue::Symbol("wsdl");
        assert!(t.is_text());
        assert!(!s.is_text());
        assert_eq!(t.as_str(), "hello world");
        assert_eq!(s.as_str(), "wsdl");
        assert_eq!(s.to_string(), "wsdl");
    }
}
