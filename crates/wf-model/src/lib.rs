//! # wf-model — the scientific workflow data model
//!
//! This crate implements the data model used throughout the reproduction of
//! *Starlinger et al., "Similarity Search for Scientific Workflows", PVLDB
//! 7(12), 2014*.
//!
//! A scientific workflow is modelled, exactly as in Section 1 of the paper,
//! as a directed acyclic graph (DAG): data processing [`Module`]s are the
//! nodes, [`Datalink`]s are the edges, and the [`Workflow`] as a whole carries
//! repository [`Annotations`] (title, free-text description, keyword tags,
//! author).  Each module has a set of attributes — a label, a module type, a
//! textual description, an optional script body, web-service related
//! properties (authority, service name, service URI) and a bag of static
//! parameters — from which module-level similarity is computed by the
//! `wf-sim` crate.
//!
//! Besides the plain data types this crate provides:
//!
//! * [`graph`] — graph algorithms needed by the similarity framework:
//!   topological sorting, source/sink detection, enumeration of all
//!   source-to-sink paths (used by the *Path Sets* measure), reachability,
//!   transitive reduction (used by the *Importance Projection*), and DAG
//!   validation.
//! * [`builder`] — an ergonomic builder for constructing workflows in tests,
//!   examples and the synthetic corpus generator.
//! * [`format`] — a small, dependency-free, line-oriented text format for
//!   workflows ("wfl"), standing in for the custom graph format into which
//!   the paper converted myExperiment RDF and Galaxy JSON.
//! * [`json`] — serde/JSON (de)serialization of whole workflows and corpora.
//! * [`validate`] — structural validation with precise error reporting.
//! * [`stats`] — per-workflow statistics used by the corpus-statistics
//!   experiment.
//!
//! ## Quick example
//!
//! ```
//! use wf_model::{builder::WorkflowBuilder, ModuleType};
//!
//! let wf = WorkflowBuilder::new("wf-1")
//!     .title("KEGG pathway analysis")
//!     .description("Fetches a KEGG pathway and extracts gene identifiers")
//!     .tag("kegg")
//!     .tag("pathway")
//!     .module("get_pathway", ModuleType::WsdlService, |m| {
//!         m.service("kegg.jp", "get_pathway_by_id", "http://kegg.jp/ws")
//!     })
//!     .module("extract_genes", ModuleType::BeanshellScript, |m| {
//!         m.script("return pathway.genes;")
//!     })
//!     .link("get_pathway", "extract_genes")
//!     .build()
//!     .expect("valid workflow");
//!
//! assert_eq!(wf.module_count(), 2);
//! assert_eq!(wf.graph().sources().len(), 1);
//! ```

#![deny(unsafe_code)]

pub mod attribute;
pub mod builder;
pub mod datalink;
pub mod format;
pub mod graph;
pub mod json;
pub mod module;
pub mod stats;
pub mod validate;
pub mod workflow;

pub use attribute::{AttributeKey, AttributeValue};
pub use builder::{ModuleBuilder, WorkflowBuilder};
pub use datalink::Datalink;
pub use graph::WorkflowGraph;
pub use module::{Module, ModuleId, ModuleType};
pub use stats::{CorpusStats, WorkflowStats};
pub use validate::{validate, ValidationError};
pub use workflow::{Annotations, Workflow, WorkflowId};
