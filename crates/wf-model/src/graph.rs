//! Graph algorithms over workflow DAGs.
//!
//! The structural similarity measures of the paper need a handful of graph
//! primitives:
//!
//! * source / sink detection and enumeration of *all* source-to-sink paths
//!   (the topological decomposition of the *Path Sets* measure, Section
//!   2.1.3),
//! * reachability and transitive reduction (the *Importance Projection*
//!   preprocessing, Section 2.1.5, preserves paths between important modules
//!   "in terms of the transitive reduction of the resulting DAG"),
//! * topological ordering and cycle detection (corpus validation).
//!
//! [`WorkflowGraph`] is an adjacency-list snapshot of a workflow; it borrows
//! nothing so it can outlive transformations of the owning [`Workflow`].

use std::collections::VecDeque;

use crate::module::ModuleId;
use crate::workflow::Workflow;

/// Default cap on the number of source-to-sink paths enumerated per workflow.
///
/// Real workflow corpora contain a few pathological fan-out/fan-in DAGs for
/// which the number of distinct paths explodes combinatorially; the paper's
/// Path Sets measure implicitly bounds work through its 5-minute budget.  We
/// make the bound explicit and deterministic instead.
pub const DEFAULT_MAX_PATHS: usize = 4096;

/// An adjacency-list view of a workflow DAG.
#[derive(Debug, Clone)]
pub struct WorkflowGraph {
    node_count: usize,
    /// successors[v] = modules that v feeds data into (deduplicated, sorted).
    successors: Vec<Vec<ModuleId>>,
    /// predecessors[v] = modules feeding data into v (deduplicated, sorted).
    predecessors: Vec<Vec<ModuleId>>,
    /// Number of datalinks including parallel edges between the same pair.
    raw_edge_count: usize,
}

impl WorkflowGraph {
    /// Builds the adjacency structure of the given workflow.
    ///
    /// Links whose endpoints are out of range are ignored here; they are
    /// reported by [`crate::validate::validate`] instead.
    pub fn from_workflow(wf: &Workflow) -> Self {
        let n = wf.module_count();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        let mut raw_edge_count = 0;
        for l in &wf.links {
            let (f, t) = (l.from.index(), l.to.index());
            if f < n && t < n {
                successors[f].push(l.to);
                predecessors[t].push(l.from);
                raw_edge_count += 1;
            }
        }
        for list in successors.iter_mut().chain(predecessors.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        WorkflowGraph {
            node_count: n,
            successors,
            predecessors,
            raw_edge_count,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct directed edges (parallel datalinks collapsed).
    pub fn edge_count(&self) -> usize {
        self.successors.iter().map(|s| s.len()).sum()
    }

    /// Number of datalinks including parallel edges.
    pub fn raw_edge_count(&self) -> usize {
        self.raw_edge_count
    }

    /// The direct successors of a module.
    pub fn successors(&self, id: ModuleId) -> &[ModuleId] {
        &self.successors[id.index()]
    }

    /// The direct predecessors of a module.
    pub fn predecessors(&self, id: ModuleId) -> &[ModuleId] {
        &self.predecessors[id.index()]
    }

    /// All distinct edges as (from, to) pairs, sorted.
    pub fn edges(&self) -> Vec<(ModuleId, ModuleId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (from, succs) in self.successors.iter().enumerate() {
            for &to in succs {
                out.push((ModuleId(from as u32), to));
            }
        }
        out
    }

    /// Modules without inbound datalinks (the DAG's sources).
    pub fn sources(&self) -> Vec<ModuleId> {
        (0..self.node_count)
            .filter(|&v| self.predecessors[v].is_empty())
            .map(|v| ModuleId(v as u32))
            .collect()
    }

    /// Modules without outbound datalinks (the DAG's sinks).
    pub fn sinks(&self) -> Vec<ModuleId> {
        (0..self.node_count)
            .filter(|&v| self.successors[v].is_empty())
            .map(|v| ModuleId(v as u32))
            .collect()
    }

    /// Kahn topological sort.  Returns `None` if the graph contains a cycle.
    pub fn topological_order(&self) -> Option<Vec<ModuleId>> {
        let mut indegree: Vec<usize> = (0..self.node_count)
            .map(|v| self.predecessors[v].len())
            .collect();
        let mut queue: VecDeque<usize> =
            (0..self.node_count).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(self.node_count);
        while let Some(v) = queue.pop_front() {
            order.push(ModuleId(v as u32));
            for &s in &self.successors[v] {
                let si = s.index();
                indegree[si] -= 1;
                if indegree[si] == 0 {
                    queue.push_back(si);
                }
            }
        }
        if order.len() == self.node_count {
            Some(order)
        } else {
            None
        }
    }

    /// True if the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// The set of nodes reachable from `start` (excluding `start` itself
    /// unless it lies on a cycle).
    pub fn reachable_from(&self, start: ModuleId) -> Vec<ModuleId> {
        let mut seen = vec![false; self.node_count];
        let mut stack = vec![start];
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            for &s in &self.successors[v.index()] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    out.push(s);
                    stack.push(s);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Boolean reachability matrix: `reach[u][v]` is true iff there is a
    /// non-empty directed path from `u` to `v`.
    pub fn reachability_matrix(&self) -> Vec<Vec<bool>> {
        let n = self.node_count;
        let mut reach = vec![vec![false; n]; n];
        // Process in reverse topological order so each node can reuse the
        // closure of its successors; fall back to per-node DFS on cycles.
        if let Some(order) = self.topological_order() {
            for &v in order.iter().rev() {
                let vi = v.index();
                for &s in &self.successors[vi] {
                    let si = s.index();
                    reach[vi][si] = true;
                    // row-or: reach[vi] |= reach[si].  The two rows are
                    // distinct (a DAG has no self-loops), so take the source
                    // row out, merge, and put it back to satisfy the borrow
                    // checker without cloning.
                    let src_row = std::mem::take(&mut reach[si]);
                    for (dst, &src) in reach[vi].iter_mut().zip(&src_row) {
                        *dst |= src;
                    }
                    reach[si] = src_row;
                }
            }
        } else {
            for (v, row) in reach.iter_mut().enumerate() {
                for r in self.reachable_from(ModuleId(v as u32)) {
                    row[r.index()] = true;
                }
            }
        }
        reach
    }

    /// All source-to-sink paths, capped at [`DEFAULT_MAX_PATHS`].
    ///
    /// Each path is a sequence of module ids from a source (no inbound links)
    /// to a sink (no outbound links).  An isolated module yields the
    /// single-element path `[m]`.
    pub fn all_paths(&self) -> Vec<Vec<ModuleId>> {
        self.all_paths_capped(DEFAULT_MAX_PATHS)
    }

    /// All source-to-sink paths, with an explicit cap on the number of paths.
    ///
    /// Enumeration is depth-first in ascending module-id order, so the
    /// result is deterministic; once `cap` paths have been produced the
    /// enumeration stops.
    pub fn all_paths_capped(&self, cap: usize) -> Vec<Vec<ModuleId>> {
        let mut paths = Vec::new();
        if self.node_count == 0 || cap == 0 {
            return paths;
        }
        // Guard against cycles: path enumeration only makes sense on DAGs.
        if !self.is_acyclic() {
            return paths;
        }
        let mut current: Vec<ModuleId> = Vec::new();
        for source in self.sources() {
            if paths.len() >= cap {
                break;
            }
            self.extend_paths(source, &mut current, &mut paths, cap);
        }
        paths
    }

    fn extend_paths(
        &self,
        node: ModuleId,
        current: &mut Vec<ModuleId>,
        paths: &mut Vec<Vec<ModuleId>>,
        cap: usize,
    ) {
        if paths.len() >= cap {
            return;
        }
        current.push(node);
        let succs = &self.successors[node.index()];
        if succs.is_empty() {
            paths.push(current.clone());
        } else {
            for &s in succs {
                if paths.len() >= cap {
                    break;
                }
                self.extend_paths(s, current, paths, cap);
            }
        }
        current.pop();
    }

    /// The transitive reduction of this DAG: the minimal set of edges with
    /// the same reachability relation.
    ///
    /// Returns the reduced edge list.  On cyclic graphs the original edge
    /// list is returned unchanged (transitive reduction is not unique there).
    pub fn transitive_reduction(&self) -> Vec<(ModuleId, ModuleId)> {
        if !self.is_acyclic() {
            return self.edges();
        }
        let reach = self.reachability_matrix();
        let mut reduced = Vec::new();
        for (u, succs) in self.successors.iter().enumerate() {
            for &v in succs {
                // Keep u->v unless some other successor w of u reaches v.
                let redundant = succs.iter().any(|&w| w != v && reach[w.index()][v.index()]);
                if !redundant {
                    reduced.push((ModuleId(u as u32), v));
                }
            }
        }
        reduced
    }

    /// Length (number of edges) of the longest source-to-sink path.
    ///
    /// Returns 0 for empty or single-node graphs and `None` for cyclic ones.
    pub fn longest_path_length(&self) -> Option<usize> {
        let order = self.topological_order()?;
        let mut dist = vec![0usize; self.node_count];
        for v in order {
            let vi = v.index();
            for &s in &self.successors[vi] {
                let si = s.index();
                if dist[vi] + 1 > dist[si] {
                    dist[si] = dist[vi] + 1;
                }
            }
        }
        Some(dist.into_iter().max().unwrap_or(0))
    }

    /// Weakly connected components, each given as a sorted list of modules.
    pub fn weakly_connected_components(&self) -> Vec<Vec<ModuleId>> {
        let n = self.node_count;
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = next;
            next += 1;
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(v) = stack.pop() {
                for &u in self.successors[v].iter().chain(self.predecessors[v].iter()) {
                    let ui = u.index();
                    if comp[ui] == usize::MAX {
                        comp[ui] = c;
                        stack.push(ui);
                    }
                }
            }
        }
        let mut out = vec![Vec::new(); next];
        for (v, &c) in comp.iter().enumerate() {
            out[c].push(ModuleId(v as u32));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::module::ModuleType;

    /// a -> b -> d, a -> c -> d  (diamond)
    fn diamond() -> Workflow {
        WorkflowBuilder::new("diamond")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .module("c", ModuleType::BeanshellScript, |m| m)
            .module("d", ModuleType::WsdlService, |m| m)
            .link("a", "b")
            .link("a", "c")
            .link("b", "d")
            .link("c", "d")
            .build()
            .unwrap()
    }

    #[test]
    fn counts_sources_sinks() {
        let g = diamond().graph();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![ModuleId(0)]);
        assert_eq!(g.sinks(), vec![ModuleId(3)]);
    }

    #[test]
    fn successors_and_predecessors() {
        let g = diamond().graph();
        assert_eq!(g.successors(ModuleId(0)), &[ModuleId(1), ModuleId(2)]);
        assert_eq!(g.predecessors(ModuleId(3)), &[ModuleId(1), ModuleId(2)]);
        assert!(g.predecessors(ModuleId(0)).is_empty());
    }

    #[test]
    fn parallel_links_are_collapsed_in_edge_count() {
        let mut wf = diamond();
        // Add a parallel a->b link on different ports.
        wf.links.push(crate::datalink::Datalink::with_ports(
            ModuleId(0),
            ModuleId(1),
            "out2",
            "in2",
        ));
        let g = wf.graph();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.raw_edge_count(), 5);
    }

    #[test]
    fn topological_order_is_valid() {
        let g = diamond().graph();
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, m) in order.iter().enumerate() {
                pos[m.index()] = i;
            }
            pos
        };
        for (u, v) in g.edges() {
            assert!(pos[u.index()] < pos[v.index()], "{u} before {v}");
        }
        assert!(g.is_acyclic());
    }

    #[test]
    fn cycle_is_detected() {
        let mut wf = diamond();
        wf.links
            .push(crate::datalink::Datalink::new(ModuleId(3), ModuleId(0)));
        let g = wf.graph();
        assert!(!g.is_acyclic());
        assert!(g.topological_order().is_none());
        assert!(g.all_paths().is_empty());
        assert!(g.longest_path_length().is_none());
    }

    #[test]
    fn all_paths_of_diamond() {
        let g = diamond().graph();
        let mut paths = g.all_paths();
        paths.sort();
        assert_eq!(
            paths,
            vec![
                vec![ModuleId(0), ModuleId(1), ModuleId(3)],
                vec![ModuleId(0), ModuleId(2), ModuleId(3)],
            ]
        );
    }

    #[test]
    fn isolated_module_yields_singleton_path() {
        let wf = WorkflowBuilder::new("single")
            .module("only", ModuleType::WsdlService, |m| m)
            .build()
            .unwrap();
        let g = wf.graph();
        assert_eq!(g.all_paths(), vec![vec![ModuleId(0)]]);
        assert_eq!(g.sources(), g.sinks());
    }

    #[test]
    fn path_cap_limits_enumeration() {
        // Chain of diamonds: a layered graph with 2^5 = 32 paths.
        let mut b = WorkflowBuilder::new("layered");
        b = b.module("s0", ModuleType::WsdlService, |m| m);
        for layer in 0..5 {
            b = b
                .module(format!("l{layer}a"), ModuleType::WsdlService, |m| m)
                .module(format!("l{layer}b"), ModuleType::WsdlService, |m| m)
                .module(format!("s{}", layer + 1), ModuleType::WsdlService, |m| m)
                .link(format!("s{layer}"), format!("l{layer}a"))
                .link(format!("s{layer}"), format!("l{layer}b"))
                .link(format!("l{layer}a"), format!("s{}", layer + 1))
                .link(format!("l{layer}b"), format!("s{}", layer + 1));
        }
        let wf = b.build().unwrap();
        let g = wf.graph();
        assert_eq!(g.all_paths().len(), 32);
        assert_eq!(g.all_paths_capped(10).len(), 10);
        assert!(g.all_paths_capped(0).is_empty());
    }

    #[test]
    fn reachability_and_transitive_reduction() {
        // a -> b -> c plus a redundant a -> c edge.
        let wf = WorkflowBuilder::new("red")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .module("c", ModuleType::WsdlService, |m| m)
            .link("a", "b")
            .link("b", "c")
            .link("a", "c")
            .build()
            .unwrap();
        let g = wf.graph();
        let reach = g.reachability_matrix();
        assert!(reach[0][2]);
        assert!(reach[0][1]);
        assert!(!reach[2][0]);
        let reduced = g.transitive_reduction();
        assert_eq!(
            reduced,
            vec![(ModuleId(0), ModuleId(1)), (ModuleId(1), ModuleId(2))]
        );
    }

    #[test]
    fn longest_path_and_components() {
        let g = diamond().graph();
        assert_eq!(g.longest_path_length(), Some(2));
        assert_eq!(g.weakly_connected_components().len(), 1);

        let wf = WorkflowBuilder::new("two-parts")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .module("c", ModuleType::WsdlService, |m| m)
            .link("a", "b")
            .build()
            .unwrap();
        let comps = wf.graph().weakly_connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![ModuleId(0), ModuleId(1)]);
        assert_eq!(comps[1], vec![ModuleId(2)]);
    }

    #[test]
    fn reachable_from_excludes_start_on_dag() {
        let g = diamond().graph();
        assert_eq!(
            g.reachable_from(ModuleId(0)),
            vec![ModuleId(1), ModuleId(2), ModuleId(3)]
        );
        assert!(g.reachable_from(ModuleId(3)).is_empty());
    }
}
