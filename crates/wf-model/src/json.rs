//! JSON (de)serialization of workflows and corpora.
//!
//! Repository dumps are exchanged as JSON: either a single [`Workflow`] or a
//! whole corpus (a JSON array of workflows).  The format is the natural serde
//! projection of the model types, so it is stable as long as the model is.

use std::error::Error;
use std::fmt;

use crate::validate::{validate, ValidationError};
use crate::workflow::Workflow;

/// Errors arising when reading workflows from JSON.
#[derive(Debug)]
pub enum JsonError {
    /// The JSON text could not be parsed into the model types.
    Parse(serde_json::Error),
    /// The parsed workflow violates structural invariants.
    Invalid(ValidationError),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse(e) => write!(f, "cannot parse workflow JSON: {e}"),
            JsonError::Invalid(e) => write!(f, "workflow JSON is structurally invalid: {e}"),
        }
    }
}

impl Error for JsonError {}

impl From<serde_json::Error> for JsonError {
    fn from(value: serde_json::Error) -> Self {
        JsonError::Parse(value)
    }
}

impl From<ValidationError> for JsonError {
    fn from(value: ValidationError) -> Self {
        JsonError::Invalid(value)
    }
}

/// Serialises a single workflow to pretty-printed JSON.
pub fn workflow_to_json(wf: &Workflow) -> String {
    serde_json::to_string_pretty(wf).expect("workflow serialization cannot fail")
}

/// Parses and validates a single workflow from JSON.
pub fn workflow_from_json(text: &str) -> Result<Workflow, JsonError> {
    let wf: Workflow = serde_json::from_str(text)?;
    validate(&wf)?;
    Ok(wf)
}

/// Serialises a corpus (slice of workflows) to JSON.
pub fn corpus_to_json(corpus: &[Workflow]) -> String {
    serde_json::to_string_pretty(corpus).expect("corpus serialization cannot fail")
}

/// Parses and validates a corpus from JSON.  All workflows must be valid.
pub fn corpus_from_json(text: &str) -> Result<Vec<Workflow>, JsonError> {
    let corpus: Vec<Workflow> = serde_json::from_str(text)?;
    for wf in &corpus {
        validate(wf)?;
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::module::ModuleType;

    fn sample() -> Workflow {
        WorkflowBuilder::new("2805")
            .title("Get Pathway-Genes by Entrez gene id")
            .tag("entrez")
            .module("lookup_gene", ModuleType::WsdlService, |m| {
                m.service(
                    "ncbi.nlm.nih.gov",
                    "efetch",
                    "http://ncbi.nlm.nih.gov/entrez",
                )
            })
            .module("extract_pathways", ModuleType::BeanshellScript, |m| {
                m.script("return pathways;")
            })
            .link("lookup_gene", "extract_pathways")
            .build()
            .unwrap()
    }

    #[test]
    fn workflow_round_trip() {
        let wf = sample();
        let json = workflow_to_json(&wf);
        let parsed = workflow_from_json(&json).unwrap();
        assert_eq!(parsed, wf);
    }

    #[test]
    fn corpus_round_trip() {
        let corpus = vec![sample(), sample()];
        let json = corpus_to_json(&corpus);
        let parsed = corpus_from_json(&json).unwrap();
        assert_eq!(parsed, corpus);
    }

    #[test]
    fn parse_error_is_reported() {
        assert!(matches!(
            workflow_from_json("{not json"),
            Err(JsonError::Parse(_))
        ));
    }

    #[test]
    fn invalid_workflow_is_rejected() {
        // Manually craft JSON with a dangling link.
        let mut wf = sample();
        wf.links.push(crate::datalink::Datalink::new(
            crate::module::ModuleId(0),
            crate::module::ModuleId(99),
        ));
        let json = serde_json::to_string(&wf).unwrap();
        assert!(matches!(
            workflow_from_json(&json),
            Err(JsonError::Invalid(ValidationError::DanglingLink { .. }))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = workflow_from_json("{").unwrap_err();
        assert!(err.to_string().contains("cannot parse"));
    }
}
