//! Datalinks: the directed edges of a workflow DAG.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::module::ModuleId;

/// A directed datalink from one module to another.
///
/// The optional port names record which output of the source module feeds
/// which input of the target module.  The similarity measures of the paper
/// do not use port information, but the corpus importer keeps it so that the
/// model is faithful to what repositories store and so that multi-edges
/// between the same pair of modules (different ports) can be represented.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Datalink {
    /// The module producing the data.
    pub from: ModuleId,
    /// The module consuming the data.
    pub to: ModuleId,
    /// Name of the output port on the producing module, if known.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub from_port: Option<String>,
    /// Name of the input port on the consuming module, if known.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub to_port: Option<String>,
}

impl Datalink {
    /// Creates a datalink without port information.
    pub fn new(from: ModuleId, to: ModuleId) -> Self {
        Datalink {
            from,
            to,
            from_port: None,
            to_port: None,
        }
    }

    /// Creates a datalink with explicit port names.
    pub fn with_ports(
        from: ModuleId,
        to: ModuleId,
        from_port: impl Into<String>,
        to_port: impl Into<String>,
    ) -> Self {
        Datalink {
            from,
            to,
            from_port: Some(from_port.into()),
            to_port: Some(to_port.into()),
        }
    }

    /// The (from, to) endpoint pair, ignoring ports.
    pub fn endpoints(&self) -> (ModuleId, ModuleId) {
        (self.from, self.to)
    }

    /// True if this link is a self loop (never valid in a DAG, but
    /// representable so that validation can report it).
    pub fn is_self_loop(&self) -> bool {
        self.from == self.to
    }
}

impl fmt::Display for Datalink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.from_port, &self.to_port) {
            (Some(fp), Some(tp)) => write!(f, "{}:{} -> {}:{}", self.from, fp, self.to, tp),
            _ => write!(f, "{} -> {}", self.from, self.to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_self_loop() {
        let l = Datalink::new(ModuleId(1), ModuleId(2));
        assert_eq!(l.endpoints(), (ModuleId(1), ModuleId(2)));
        assert!(!l.is_self_loop());
        assert!(Datalink::new(ModuleId(3), ModuleId(3)).is_self_loop());
    }

    #[test]
    fn display_with_and_without_ports() {
        let plain = Datalink::new(ModuleId(0), ModuleId(1));
        assert_eq!(plain.to_string(), "m0 -> m1");
        let ported = Datalink::with_ports(ModuleId(0), ModuleId(1), "out", "in");
        assert_eq!(ported.to_string(), "m0:out -> m1:in");
    }

    #[test]
    fn ordering_is_by_endpoints_first() {
        let a = Datalink::new(ModuleId(0), ModuleId(1));
        let b = Datalink::new(ModuleId(0), ModuleId(2));
        let c = Datalink::new(ModuleId(1), ModuleId(0));
        assert!(a < b);
        assert!(b < c);
    }
}
