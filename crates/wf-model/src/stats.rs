//! Per-workflow and per-corpus statistics.
//!
//! Section 4.1 and 5.1.4 of the paper report a handful of corpus statistics
//! that the synthetic corpus must reproduce (1483 workflows, roughly 15%
//! without tags, an average of 11.3 modules per workflow dropping to 4.7
//! after Importance Projection).  These helpers compute those numbers.

use serde::{Deserialize, Serialize};

use crate::workflow::Workflow;

/// Structural statistics of one workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowStats {
    /// Number of modules (|V|).
    pub modules: usize,
    /// Number of distinct datalinks (|E|).
    pub links: usize,
    /// Number of DAG sources.
    pub sources: usize,
    /// Number of DAG sinks.
    pub sinks: usize,
    /// Length of the longest path (in edges).
    pub depth: usize,
    /// Number of source-to-sink paths (capped at the enumeration cap).
    pub paths: usize,
    /// Whether the workflow carries any tags.
    pub has_tags: bool,
    /// Whether the workflow carries a description.
    pub has_description: bool,
}

impl WorkflowStats {
    /// Computes the statistics of a workflow.
    pub fn of(wf: &Workflow) -> Self {
        let g = wf.graph();
        WorkflowStats {
            modules: wf.module_count(),
            links: g.edge_count(),
            sources: g.sources().len(),
            sinks: g.sinks().len(),
            depth: g.longest_path_length().unwrap_or(0),
            paths: g.all_paths().len(),
            has_tags: wf.annotations.has_tags(),
            has_description: wf.annotations.description.is_some(),
        }
    }
}

/// Aggregate statistics over a corpus of workflows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of workflows in the corpus.
    pub workflows: usize,
    /// Mean number of modules per workflow.
    pub mean_modules: f64,
    /// Mean number of datalinks per workflow.
    pub mean_links: f64,
    /// Fraction of workflows without any tags (paper: ≈ 15%).
    pub untagged_fraction: f64,
    /// Fraction of workflows without a description.
    pub undescribed_fraction: f64,
    /// Largest workflow (module count).
    pub max_modules: usize,
    /// Smallest workflow (module count).
    pub min_modules: usize,
}

impl CorpusStats {
    /// Computes aggregate statistics over a corpus.
    ///
    /// Returns `None` for an empty corpus (means are undefined).
    pub fn of(corpus: &[Workflow]) -> Option<Self> {
        if corpus.is_empty() {
            return None;
        }
        let n = corpus.len() as f64;
        let per: Vec<WorkflowStats> = corpus.iter().map(WorkflowStats::of).collect();
        Some(CorpusStats {
            workflows: corpus.len(),
            mean_modules: per.iter().map(|s| s.modules as f64).sum::<f64>() / n,
            mean_links: per.iter().map(|s| s.links as f64).sum::<f64>() / n,
            untagged_fraction: per.iter().filter(|s| !s.has_tags).count() as f64 / n,
            undescribed_fraction: per.iter().filter(|s| !s.has_description).count() as f64 / n,
            max_modules: per.iter().map(|s| s.modules).max().unwrap_or(0),
            min_modules: per.iter().map(|s| s.modules).min().unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::module::ModuleType;

    fn tagged(n_modules: usize) -> Workflow {
        let mut b = WorkflowBuilder::new(format!("wf-{n_modules}")).tag("bio");
        for i in 0..n_modules {
            b = b.module(format!("m{i}"), ModuleType::WsdlService, |m| m);
            if i > 0 {
                b = b.link(format!("m{}", i - 1), format!("m{i}"));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn workflow_stats_of_chain() {
        let wf = tagged(4);
        let s = WorkflowStats::of(&wf);
        assert_eq!(s.modules, 4);
        assert_eq!(s.links, 3);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.paths, 1);
        assert!(s.has_tags);
        assert!(!s.has_description);
    }

    #[test]
    fn corpus_stats_aggregates() {
        let mut untagged = tagged(2);
        untagged.annotations.tags.clear();
        let corpus = vec![tagged(2), tagged(4), untagged];
        let s = CorpusStats::of(&corpus).unwrap();
        assert_eq!(s.workflows, 3);
        assert!((s.mean_modules - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_modules, 4);
        assert_eq!(s.min_modules, 2);
        assert!((s.untagged_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.undescribed_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus_has_no_stats() {
        assert!(CorpusStats::of(&[]).is_none());
    }
}
