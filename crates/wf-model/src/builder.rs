//! Fluent construction of workflows.
//!
//! The builder is the main way tests, examples and the synthetic corpus
//! generator create workflows.  Modules are addressed by label while
//! building; the builder assigns dense [`ModuleId`]s and resolves labels to
//! ids when links are added.

use std::collections::BTreeMap;

use crate::datalink::Datalink;
use crate::module::{Module, ModuleId, ModuleType};
use crate::validate::{validate, ValidationError};
use crate::workflow::{Annotations, Workflow, WorkflowId};

/// Configures one module while it is being added to a [`WorkflowBuilder`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    fn new(id: ModuleId, label: impl Into<String>, module_type: ModuleType) -> Self {
        ModuleBuilder {
            module: Module::new(id, label, module_type),
        }
    }

    /// Sets the free-text description of the module.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.module.description = Some(text.into());
        self
    }

    /// Sets the script body of the module.
    pub fn script(mut self, body: impl Into<String>) -> Self {
        self.module.script = Some(body.into());
        self
    }

    /// Sets the three web-service attributes at once.
    pub fn service(
        mut self,
        authority: impl Into<String>,
        name: impl Into<String>,
        uri: impl Into<String>,
    ) -> Self {
        self.module.service_authority = Some(authority.into());
        self.module.service_name = Some(name.into());
        self.module.service_uri = Some(uri.into());
        self
    }

    /// Sets only the service authority.
    pub fn service_authority(mut self, authority: impl Into<String>) -> Self {
        self.module.service_authority = Some(authority.into());
        self
    }

    /// Sets only the service name.
    pub fn service_name(mut self, name: impl Into<String>) -> Self {
        self.module.service_name = Some(name.into());
        self
    }

    /// Sets only the service URI.
    pub fn service_uri(mut self, uri: impl Into<String>) -> Self {
        self.module.service_uri = Some(uri.into());
        self
    }

    /// Adds a static parameter.
    pub fn parameter(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.module.parameters.insert(key.into(), value.into());
        self
    }

    fn finish(self) -> Module {
        self.module
    }
}

/// Incrementally builds a [`Workflow`], validating it at the end.
#[derive(Debug)]
pub struct WorkflowBuilder {
    id: WorkflowId,
    annotations: Annotations,
    modules: Vec<Module>,
    links: Vec<Datalink>,
    label_index: BTreeMap<String, ModuleId>,
    /// Links given by label whose endpoints were unknown at insertion time.
    unresolved_links: Vec<(String, String)>,
}

impl WorkflowBuilder {
    /// Starts building a workflow with the given repository id.
    pub fn new(id: impl Into<WorkflowId>) -> Self {
        WorkflowBuilder {
            id: id.into(),
            annotations: Annotations::default(),
            modules: Vec::new(),
            links: Vec::new(),
            label_index: BTreeMap::new(),
            unresolved_links: Vec::new(),
        }
    }

    /// Sets the workflow title.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.annotations.title = Some(title.into());
        self
    }

    /// Sets the workflow description.
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.annotations.description = Some(description.into());
        self
    }

    /// Adds a keyword tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.annotations.tags.push(tag.into());
        self
    }

    /// Sets the uploading author.
    pub fn author(mut self, author: impl Into<String>) -> Self {
        self.annotations.author = Some(author.into());
        self
    }

    /// Replaces the whole annotation block at once.
    pub fn annotations(mut self, annotations: Annotations) -> Self {
        self.annotations = annotations;
        self
    }

    /// Adds a module with the given label and type; `configure` customises
    /// the remaining attributes through a [`ModuleBuilder`].
    ///
    /// The label must be unique within the workflow because links are
    /// declared by label; duplicate labels are reported by
    /// [`WorkflowBuilder::build`].
    pub fn module(
        mut self,
        label: impl Into<String>,
        module_type: ModuleType,
        configure: impl FnOnce(ModuleBuilder) -> ModuleBuilder,
    ) -> Self {
        let label = label.into();
        let id = ModuleId(self.modules.len() as u32);
        let module = configure(ModuleBuilder::new(id, label.clone(), module_type)).finish();
        // First occurrence wins in the index; duplicates are reported later.
        self.label_index.entry(label).or_insert(id);
        self.modules.push(module);
        self
    }

    /// Adds a datalink between two previously (or later) added modules,
    /// addressed by label.
    pub fn link(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.unresolved_links.push((from.into(), to.into()));
        self
    }

    /// Adds a datalink by module id (useful when ids are already known).
    pub fn link_ids(mut self, from: ModuleId, to: ModuleId) -> Self {
        self.links.push(Datalink::new(from, to));
        self
    }

    /// Finalises the workflow, resolving label links and validating the
    /// result.
    pub fn build(mut self) -> Result<Workflow, ValidationError> {
        // Detect duplicate labels before resolving links against them.
        let mut seen = BTreeMap::new();
        for m in &self.modules {
            if let Some(prev) = seen.insert(m.label.clone(), m.id) {
                return Err(ValidationError::DuplicateLabel {
                    label: m.label.clone(),
                    first: prev,
                    second: m.id,
                });
            }
        }
        for (from, to) in std::mem::take(&mut self.unresolved_links) {
            let from_id =
                *self
                    .label_index
                    .get(&from)
                    .ok_or_else(|| ValidationError::UnknownLabel {
                        label: from.clone(),
                    })?;
            let to_id = *self
                .label_index
                .get(&to)
                .ok_or_else(|| ValidationError::UnknownLabel { label: to.clone() })?;
            self.links.push(Datalink::new(from_id, to_id));
        }
        let wf = Workflow {
            id: self.id,
            annotations: self.annotations,
            modules: self.modules,
            links: self.links,
        };
        validate(&wf)?;
        Ok(wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_complete_workflow() {
        let wf = WorkflowBuilder::new("1189")
            .title("KEGG pathway analysis")
            .description("Retrieves a pathway and maps genes onto it")
            .tag("kegg")
            .tag("pathway")
            .author("alice")
            .module("get_pathway", ModuleType::WsdlService, |m| {
                m.service("kegg.jp", "get_pathway_by_id", "http://kegg.jp/ws")
                    .description("fetch pathway")
                    .parameter("organism", "hsa")
            })
            .module("split_ids", ModuleType::LocalOperation, |m| m)
            .module("map_genes", ModuleType::BeanshellScript, |m| {
                m.script("for (g : genes) { map(g); }")
            })
            .link("get_pathway", "split_ids")
            .link("split_ids", "map_genes")
            .build()
            .unwrap();

        assert_eq!(wf.id.as_str(), "1189");
        assert_eq!(wf.module_count(), 3);
        assert_eq!(wf.link_count(), 2);
        assert_eq!(wf.annotations.tags, vec!["kegg", "pathway"]);
        let m = wf.module_by_label("get_pathway").unwrap();
        assert_eq!(m.service_authority.as_deref(), Some("kegg.jp"));
        assert_eq!(
            m.parameters.get("organism").map(String::as_str),
            Some("hsa")
        );
    }

    #[test]
    fn link_to_unknown_label_fails() {
        let err = WorkflowBuilder::new("x")
            .module("a", ModuleType::WsdlService, |m| m)
            .link("a", "ghost")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::UnknownLabel { label } if label == "ghost"));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let err = WorkflowBuilder::new("x")
            .module("dup", ModuleType::WsdlService, |m| m)
            .module("dup", ModuleType::BeanshellScript, |m| m)
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::DuplicateLabel { label, .. } if label == "dup"));
    }

    #[test]
    fn cyclic_workflows_are_rejected() {
        let err = WorkflowBuilder::new("x")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .link("a", "b")
            .link("b", "a")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::Cyclic));
    }

    #[test]
    fn link_ids_bypasses_label_resolution() {
        let wf = WorkflowBuilder::new("x")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .link_ids(ModuleId(0), ModuleId(1))
            .build()
            .unwrap();
        assert_eq!(wf.link_count(), 1);
    }

    #[test]
    fn links_can_reference_modules_added_later() {
        let wf = WorkflowBuilder::new("x")
            .link("a", "b")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .build()
            .unwrap();
        assert_eq!(wf.link_count(), 1);
        assert_eq!(wf.links[0].endpoints(), (ModuleId(0), ModuleId(1)));
    }
}
