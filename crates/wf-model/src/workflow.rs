//! The [`Workflow`] type: a DAG of modules plus repository annotations.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::datalink::Datalink;
use crate::graph::WorkflowGraph;
use crate::module::{Module, ModuleId};

/// Identifier of a workflow within a repository (e.g. the myExperiment id
/// "1189" or a Galaxy workflow slug).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct WorkflowId(pub String);

impl WorkflowId {
    /// Creates a workflow id from anything string-like.
    pub fn new(id: impl Into<String>) -> Self {
        WorkflowId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for WorkflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for WorkflowId {
    fn from(value: &str) -> Self {
        WorkflowId(value.to_string())
    }
}

impl From<String> for WorkflowId {
    fn from(value: String) -> Self {
        WorkflowId(value)
    }
}

/// The textual annotations a workflow carries in a repository: title,
/// free-text description, keyword tags and the uploading author.
///
/// These are the inputs of the annotation-based measures (paper Section 2.2).
/// All fields are optional because, as the paper stresses, a workflow stored
/// by an arbitrary user "may or may not" be annotated (about 15% of the
/// myExperiment corpus lack tags, and Galaxy workflows carry very little
/// annotation at all).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Annotations {
    /// The workflow title.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub title: Option<String>,
    /// The free-form description of the workflow's functionality.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Keyword tags assigned by the author.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tags: Vec<String>,
    /// The uploading author.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub author: Option<String>,
}

impl Annotations {
    /// True if the workflow carries no textual annotation at all.
    pub fn is_empty(&self) -> bool {
        self.title.is_none()
            && self.description.is_none()
            && self.tags.is_empty()
            && self.author.is_none()
    }

    /// True if the workflow has at least one keyword tag.
    pub fn has_tags(&self) -> bool {
        !self.tags.is_empty()
    }

    /// Title and description concatenated — the text the Bag-of-Words
    /// measure operates on.
    pub fn title_and_description(&self) -> String {
        match (&self.title, &self.description) {
            (Some(t), Some(d)) => format!("{t} {d}"),
            (Some(t), None) => t.clone(),
            (None, Some(d)) => d.clone(),
            (None, None) => String::new(),
        }
    }
}

/// A scientific workflow: annotations, modules and datalinks.
///
/// The struct owns its modules in a dense vector indexed by [`ModuleId`];
/// the derived adjacency structure is available through [`Workflow::graph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Repository identifier of the workflow.
    pub id: WorkflowId,
    /// Repository annotations (title, description, tags, author).
    #[serde(default)]
    pub annotations: Annotations,
    /// The modules, indexed by their [`ModuleId`].
    pub modules: Vec<Module>,
    /// The datalinks connecting the modules.
    pub links: Vec<Datalink>,
}

impl Workflow {
    /// Creates an empty workflow with the given id.
    pub fn new(id: impl Into<WorkflowId>) -> Self {
        Workflow {
            id: id.into(),
            annotations: Annotations::default(),
            modules: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Number of modules (|V| in the paper's notation).
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Number of datalinks (|E| in the paper's notation).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns the module with the given id, if it exists.
    pub fn module(&self, id: ModuleId) -> Option<&Module> {
        self.modules.get(id.index())
    }

    /// Returns the first module with the given label, if any.
    pub fn module_by_label(&self, label: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.label == label)
    }

    /// Iterates over all module ids of this workflow.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> + '_ {
        (0..self.modules.len() as u32).map(ModuleId)
    }

    /// Builds the adjacency structure of this workflow.
    ///
    /// The graph is rebuilt on each call; callers that need repeated graph
    /// queries (the structural measures do) should hold on to the returned
    /// [`WorkflowGraph`].
    pub fn graph(&self) -> WorkflowGraph {
        WorkflowGraph::from_workflow(self)
    }

    /// A histogram of module types, used for corpus statistics and for the
    /// repository-derived knowledge of `wf-repo`.
    pub fn type_histogram(&self) -> BTreeMap<String, usize> {
        let mut hist = BTreeMap::new();
        for m in &self.modules {
            *hist.entry(m.module_type.as_str().to_string()).or_insert(0) += 1;
        }
        hist
    }

    /// Returns a copy of this workflow restricted to the given modules.
    ///
    /// Module ids are re-numbered densely (in ascending order of the old
    /// ids); `extra_links` are added after the restriction, expressed in the
    /// *new* id space.  This is the primitive on which the Importance
    /// Projection (`wf-repo::projection`) is built: it keeps the important
    /// modules and re-inserts edges for the paths that ran through removed
    /// modules.
    pub fn restrict_to(&self, keep: &[ModuleId], extra_links: &[(ModuleId, ModuleId)]) -> Workflow {
        let mut keep_sorted: Vec<ModuleId> = keep.to_vec();
        keep_sorted.sort_unstable();
        keep_sorted.dedup();

        let mut remap: BTreeMap<ModuleId, ModuleId> = BTreeMap::new();
        let mut modules = Vec::with_capacity(keep_sorted.len());
        for (new_idx, old_id) in keep_sorted.iter().enumerate() {
            if let Some(m) = self.module(*old_id) {
                let mut m = m.clone();
                m.id = ModuleId(new_idx as u32);
                remap.insert(*old_id, m.id);
                modules.push(m);
            }
        }

        let mut links: Vec<Datalink> = Vec::new();
        for l in &self.links {
            if let (Some(&from), Some(&to)) = (remap.get(&l.from), remap.get(&l.to)) {
                let mut nl = l.clone();
                nl.from = from;
                nl.to = to;
                links.push(nl);
            }
        }
        for &(from, to) in extra_links {
            links.push(Datalink::new(from, to));
        }
        links.sort();
        links.dedup();

        Workflow {
            id: self.id.clone(),
            annotations: self.annotations.clone(),
            modules,
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleType;

    fn linear_workflow() -> Workflow {
        let mut wf = Workflow::new("wf-lin");
        for (i, label) in ["a", "b", "c"].iter().enumerate() {
            wf.modules.push(Module::new(
                ModuleId(i as u32),
                *label,
                ModuleType::WsdlService,
            ));
        }
        wf.links.push(Datalink::new(ModuleId(0), ModuleId(1)));
        wf.links.push(Datalink::new(ModuleId(1), ModuleId(2)));
        wf
    }

    #[test]
    fn counts_and_lookup() {
        let wf = linear_workflow();
        assert_eq!(wf.module_count(), 3);
        assert_eq!(wf.link_count(), 2);
        assert_eq!(wf.module(ModuleId(1)).unwrap().label, "b");
        assert!(wf.module(ModuleId(9)).is_none());
        assert_eq!(wf.module_by_label("c").unwrap().id, ModuleId(2));
        assert!(wf.module_by_label("zzz").is_none());
        assert_eq!(wf.module_ids().count(), 3);
    }

    #[test]
    fn annotations_helpers() {
        let mut ann = Annotations::default();
        assert!(ann.is_empty());
        assert!(!ann.has_tags());
        assert_eq!(ann.title_and_description(), "");

        ann.title = Some("KEGG pathway analysis".into());
        assert_eq!(ann.title_and_description(), "KEGG pathway analysis");

        ann.description = Some("maps genes".into());
        assert_eq!(
            ann.title_and_description(),
            "KEGG pathway analysis maps genes"
        );
        assert!(!ann.is_empty());

        ann.tags.push("kegg".into());
        assert!(ann.has_tags());
    }

    #[test]
    fn type_histogram_counts_types() {
        let mut wf = linear_workflow();
        wf.modules.push(Module::new(
            ModuleId(3),
            "script",
            ModuleType::BeanshellScript,
        ));
        let hist = wf.type_histogram();
        assert_eq!(hist.get("wsdl"), Some(&3));
        assert_eq!(hist.get("beanshell"), Some(&1));
    }

    #[test]
    fn restrict_to_renumbers_and_keeps_internal_links() {
        let wf = linear_workflow();
        // Keep "a" and "b": the a->b link survives, b->c disappears.
        let restricted = wf.restrict_to(&[ModuleId(0), ModuleId(1)], &[]);
        assert_eq!(restricted.module_count(), 2);
        assert_eq!(restricted.link_count(), 1);
        assert_eq!(restricted.modules[0].label, "a");
        assert_eq!(restricted.modules[1].label, "b");
        assert_eq!(restricted.links[0].endpoints(), (ModuleId(0), ModuleId(1)));
    }

    #[test]
    fn restrict_to_adds_extra_links_and_dedups() {
        let wf = linear_workflow();
        // Keep "a" and "c" and bridge them explicitly (what the importance
        // projection does for the removed "b").
        let restricted = wf.restrict_to(
            &[ModuleId(0), ModuleId(2)],
            &[(ModuleId(0), ModuleId(1)), (ModuleId(0), ModuleId(1))],
        );
        assert_eq!(restricted.module_count(), 2);
        assert_eq!(restricted.link_count(), 1);
        assert_eq!(restricted.modules[1].label, "c");
        assert_eq!(restricted.links[0].endpoints(), (ModuleId(0), ModuleId(1)));
    }

    #[test]
    fn restrict_to_ignores_unknown_ids_and_duplicates() {
        let wf = linear_workflow();
        let restricted = wf.restrict_to(&[ModuleId(2), ModuleId(2), ModuleId(42)], &[]);
        assert_eq!(restricted.module_count(), 1);
        assert_eq!(restricted.modules[0].label, "c");
        assert_eq!(restricted.link_count(), 0);
    }
}
