//! # wfsim — similarity search for scientific workflows
//!
//! A from-scratch Rust reproduction of *Starlinger, Brancotte,
//! Cohen-Boulakia, Leser: "Similarity Search for Scientific Workflows",
//! PVLDB 7(12), 2014*.
//!
//! This facade crate re-exports the subsystem crates so that applications can
//! depend on a single package:
//!
//! | module | contents |
//! |--------|----------|
//! | [`model`] | workflow data model: modules, datalinks, DAG algorithms, serialization |
//! | [`text`] | tokenization, stop words, Levenshtein, Jaccard |
//! | [`matching`] | greedy / maximum-weight / non-crossing module mapping |
//! | [`ged`] | label-aware graph edit distance with time budgets |
//! | [`repo`] | repository storage, repository-derived knowledge, top-k search |
//! | [`sim`] | the similarity framework: module comparison schemes, topological measures, normalization, ensembles, rank aggregation, extended Table-1 measures, and the shared [`Corpus`] layer (profiles + inverted index + snapshots) |
//! | [`cluster`] | workflow clustering: similarity matrices, hierarchical / threshold / k-medoids clustering, duplicate detection, quality metrics |
//! | [`gold`] | gold-standard machinery: Likert ratings, consensus ranking, evaluation metrics, significance tests |
//! | [`corpus`] | synthetic Taverna-like / Galaxy-like corpora and the simulated expert panel |
//!
//! See the `examples/` directory for end-to-end usage and the repository
//! `README.md` for the crate map, build commands, and how to run the
//! `fig*` / `wfsim_*` experiment binaries that reproduce the paper's tables
//! and figures.
//!
//! ## Quickstart
//!
//! ```
//! use wfsim::model::{WorkflowBuilder, ModuleType};
//! use wfsim::sim::{SimilarityConfig, WorkflowSimilarity};
//!
//! let a = WorkflowBuilder::new("a")
//!     .title("BLAST protein search")
//!     .module("fetch_sequence", ModuleType::WsdlService, |m| {
//!         m.service("ebi.ac.uk", "fetch_fasta", "http://ebi.ac.uk/ws")
//!     })
//!     .module("run_blast", ModuleType::WsdlService, |m| {
//!         m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
//!     })
//!     .link("fetch_sequence", "run_blast")
//!     .build()
//!     .unwrap();
//!
//! let b = WorkflowBuilder::new("b")
//!     .title("Protein BLAST with report")
//!     .module("get_sequence", ModuleType::WsdlService, |m| {
//!         m.service("ebi.ac.uk", "fetch_fasta", "http://ebi.ac.uk/ws")
//!     })
//!     .module("blast_search", ModuleType::WsdlService, |m| {
//!         m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
//!     })
//!     .module("render_report", ModuleType::BeanshellScript, |m| m.script("print(hits)"))
//!     .link("get_sequence", "blast_search")
//!     .link("blast_search", "render_report")
//!     .build()
//!     .unwrap();
//!
//! let measure = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
//! let sim = measure.similarity(&a, &b);
//! assert!(sim > 0.3 && sim <= 1.0);
//! ```

#![deny(unsafe_code)]

/// The workflow data model (re-export of [`wf_model`]).
pub use wf_model as model;

/// Text preprocessing and string similarity (re-export of [`wf_text`]).
pub use wf_text as text;

/// Module mapping algorithms (re-export of [`wf_matching`]).
pub use wf_matching as matching;

/// Graph edit distance (re-export of [`wf_ged`]).
pub use wf_ged as ged;

/// Repository and repository-derived knowledge (re-export of [`wf_repo`]).
pub use wf_repo as repo;

/// The similarity framework (re-export of [`wf_sim`]).
pub use wf_sim as sim;

/// Workflow clustering and duplicate detection (re-export of [`wf_cluster`]).
pub use wf_cluster as cluster;

/// Gold-standard and evaluation machinery (re-export of [`wf_gold`]).
pub use wf_gold as gold;

/// Synthetic corpora and simulated expert panel (re-export of [`wf_corpus`]).
pub use wf_corpus as corpus;

/// The fault-tolerant network serving front end (re-export of
/// [`wf_serve`]): framed binary protocol, per-request deadlines with
/// degraded partial results, admission control with load shedding, a
/// retrying client, and a deterministic fault-injection harness.
pub use wf_serve as serve;

/// The shared corpus layer: workflows + profiles + inverted index, built
/// once and consumed by search, clustering and the experiment binaries,
/// with incremental `add`/`remove` and snapshot persistence.
pub use wf_sim::Corpus;

/// The sharded serving layer: a corpus partitioned across independent
/// shards with bit-identical scatter-gather top-k, per-shard snapshots
/// behind one manifest, and a `RwLock`-per-shard concurrent service
/// ([`CorpusService`]) with batch queries.
pub use wf_sim::{CorpusService, ShardPartition, ShardedCorpus};
