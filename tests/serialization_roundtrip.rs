//! Property-based round-trip tests for the two on-disk workflow formats
//! (JSON and the wfl text format) using arbitrary generated workflows.

use proptest::prelude::*;
use wfsim::model::{format, json, Annotations, Datalink, Module, ModuleId, ModuleType, Workflow};

/// Strategy producing valid workflows whose labels are wfl-safe (no spaces).
fn workflow_strategy() -> impl Strategy<Value = Workflow> {
    (
        1usize..=6,
        proptest::collection::vec((0usize..6, 0usize..6), 0..=8),
        proptest::option::of("[A-Za-z][A-Za-z0-9 ]{0,30}"),
        proptest::option::of("[a-z][a-z0-9 ]{0,40}"),
        proptest::collection::vec("[a-z]{2,10}", 0..=4),
        proptest::option::of("[a-z]{3,10}"),
    )
        .prop_map(|(n, raw_edges, title, description, tags, author)| {
            let mut wf = Workflow::new("roundtrip");
            for i in 0..n {
                let ty = match i % 4 {
                    0 => ModuleType::WsdlService,
                    1 => ModuleType::BeanshellScript,
                    2 => ModuleType::LocalOperation,
                    _ => ModuleType::GalaxyTool,
                };
                let mut module = Module::new(ModuleId(i as u32), format!("module_{i}"), ty.clone());
                if ty.is_service() || ty == ModuleType::GalaxyTool {
                    module.service_authority = Some(format!("auth{i}.org"));
                    module.service_name = Some(format!("service_{i}"));
                    module.service_uri = Some(format!("http://auth{i}.org/ws"));
                }
                if ty.is_script() {
                    module.script = Some(format!("line one {i}\nline two {i}"));
                }
                module.parameters.insert("organism".into(), "hsa".into());
                wf.modules.push(module);
            }
            for (u, v) in raw_edges {
                let (u, v) = (u % n, v % n);
                if u < v {
                    wf.links
                        .push(Datalink::new(ModuleId(u as u32), ModuleId(v as u32)));
                }
            }
            wf.links.sort();
            wf.links.dedup();
            wf.annotations = Annotations {
                title: title
                    .map(|t| t.trim().to_string())
                    .filter(|t| !t.is_empty()),
                description: description
                    .map(|d| d.trim().to_string())
                    .filter(|d| !d.is_empty()),
                tags,
                author,
            };
            wf
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn json_round_trip_preserves_workflows(wf in workflow_strategy()) {
        let text = json::workflow_to_json(&wf);
        let parsed = json::workflow_from_json(&text).expect("round trip parses");
        prop_assert_eq!(parsed, wf);
    }

    #[test]
    fn json_corpus_round_trip(a in workflow_strategy(), b in workflow_strategy()) {
        let corpus = vec![a, b];
        let text = json::corpus_to_json(&corpus);
        let parsed = json::corpus_from_json(&text).expect("round trip parses");
        prop_assert_eq!(parsed, corpus);
    }

    #[test]
    fn wfl_round_trip_preserves_workflows(wf in workflow_strategy()) {
        let text = format::to_wfl(&wf);
        let parsed = format::from_wfl(&text).expect("round trip parses");
        prop_assert_eq!(parsed, wf);
    }
}

#[test]
fn corpus_generator_output_round_trips_through_both_formats() {
    use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
    let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(12, 23));
    for wf in &corpus {
        let via_json = json::workflow_from_json(&json::workflow_to_json(wf)).unwrap();
        assert_eq!(&via_json, wf);
        let via_wfl = format::from_wfl(&format::to_wfl(wf)).unwrap();
        assert_eq!(&via_wfl, wf);
    }
}
