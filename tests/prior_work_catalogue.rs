//! Integration tests for the Table 1 catalogue: every reconstructed prior
//! approach must behave sensibly on corpus workflows, and the relationships
//! the paper reports between the historical approaches (Section 3, "Previous
//! Findings") must be observable.

use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::model::Workflow;
use wfsim::sim::{prior_approaches, MeasureKind, Normalization, WorkflowSimilarity};

/// A seed workflow and one of its mutated variants from the same family,
/// plus one workflow from a different topic.
fn triple() -> (Workflow, Workflow, Workflow) {
    let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(60, 91));
    let seed = corpus[0].clone();
    let seed_meta = meta.get(&seed.id).unwrap().clone();
    let sibling = corpus
        .iter()
        .find(|w| w.id != seed.id && meta.get(&w.id).map(|m| m.family) == Some(seed_meta.family))
        .expect("family variant exists")
        .clone();
    let stranger = corpus
        .iter()
        .find(|w| meta.get(&w.id).map(|m| m.topic) != Some(seed_meta.topic))
        .expect("other topic exists")
        .clone();
    (seed, sibling, stranger)
}

#[test]
fn every_prior_approach_separates_variant_from_stranger_or_abstains() {
    let (seed, sibling, stranger) = triple();
    for row in prior_approaches() {
        if row.config.normalization == Normalization::None {
            // The unnormalized [38] reconstruction reports raw negated edit
            // costs, which depend on workflow size more than on functional
            // similarity — exactly the deficiency the paper demonstrates in
            // Fig. 7, so no separation is expected from it here.
            continue;
        }
        let measure = WorkflowSimilarity::new(row.config.clone());
        let close = measure.similarity_opt(&seed, &sibling);
        let far = measure.similarity_opt(&seed, &stranger);
        // Annotation approaches may abstain when annotations are missing;
        // that is exactly the weakness the paper discusses.
        if let (Some(c), Some(f)) = (close, far) {
            assert!(
                c >= f - 1e-9,
                "{}: variant ({c}) must not score below stranger ({f})",
                row.reference
            );
        }
    }
}

#[test]
fn annotation_approaches_cover_costa_and_stoyanovich() {
    let rows = prior_approaches();
    let costa = rows
        .iter()
        .find(|r| r.reference.starts_with("[11]"))
        .unwrap();
    let stoyanovich = rows
        .iter()
        .find(|r| r.reference.starts_with("[36]"))
        .unwrap();
    assert_eq!(costa.config.measure, MeasureKind::BagOfWords);
    assert_eq!(stoyanovich.config.measure, MeasureKind::BagOfTags);
}

#[test]
fn label_matching_approaches_are_stricter_than_edit_distance_ones() {
    // Section 3 / Section 5.1.2 of the paper: strict label matching (as in
    // [33], [18], [38]) offers less fine-grained similarity than the edit
    // distance of [4].  On a pair of renamed variants the [4] reconstruction
    // must therefore see at least as much similarity as the label-matching
    // reconstructions.
    let (seed, sibling, _) = triple();
    let rows = prior_approaches();
    let bergmann = rows
        .iter()
        .find(|r| r.reference.starts_with("[4]"))
        .unwrap();
    let santos = rows
        .iter()
        .find(|r| r.reference.starts_with("[33]"))
        .unwrap();
    let bergmann_score =
        WorkflowSimilarity::new(bergmann.config.clone()).similarity(&seed, &sibling);
    let santos_score = WorkflowSimilarity::new(santos.config.clone()).similarity(&seed, &sibling);
    assert!(
        bergmann_score >= santos_score - 1e-9,
        "edit distance [4] ({bergmann_score}) vs strict matching [33] ({santos_score})"
    );
}

#[test]
fn catalogue_covers_all_measure_kinds_used_in_the_paper() {
    let kinds: std::collections::BTreeSet<&str> = prior_approaches()
        .iter()
        .map(|r| r.config.measure.shorthand())
        .collect();
    for expected in ["MS", "PS", "GE", "BW", "BT"] {
        assert!(
            kinds.contains(expected),
            "no prior approach maps to {expected}"
        );
    }
}

#[test]
fn reconstructed_configs_have_unique_reference_keys() {
    let rows = prior_approaches();
    let mut refs: Vec<&str> = rows.iter().map(|r| r.reference).collect();
    refs.sort_unstable();
    refs.dedup();
    assert_eq!(refs.len(), rows.len());
}
