//! Property-based tests over the similarity framework: for arbitrary
//! generated workflow pairs, every measure must be symmetric, bounded, and
//! maximal on identical inputs; the matching algorithms must maintain their
//! dominance relations; normalization must stay within range.

use proptest::prelude::*;
use wfsim::matching::{
    greedy_mapping, maximum_weight_mapping, maximum_weight_noncrossing_mapping, SimilarityMatrix,
};
use wfsim::model::{Datalink, Module, ModuleId, ModuleType, Workflow};
use wfsim::sim::{SimilarityConfig, WorkflowSimilarity};

/// Strategy: a random but structurally valid workflow with up to 8 modules.
fn workflow_strategy() -> impl Strategy<Value = Workflow> {
    let label_pool = [
        "get_pathway",
        "run_blast",
        "extract_genes",
        "split_string",
        "render_plot",
        "fetch_sequence",
        "align_reads",
        "filter_hits",
    ];
    let type_pool = [
        ModuleType::WsdlService,
        ModuleType::SoaplabService,
        ModuleType::BeanshellScript,
        ModuleType::LocalOperation,
        ModuleType::RShell,
    ];
    (
        1usize..=8,
        proptest::collection::vec(0usize..label_pool.len(), 1..=8),
        proptest::collection::vec(0usize..type_pool.len(), 1..=8),
        proptest::collection::vec((0usize..8, 0usize..8), 0..=12),
        proptest::option::of("[a-z]{3,12}( [a-z]{3,12}){0,4}"),
        proptest::collection::vec("[a-z]{3,8}", 0..=3),
    )
        .prop_map(move |(n, label_idx, type_idx, raw_edges, title, tags)| {
            let mut wf = Workflow::new(format!("prop-{n}"));
            for i in 0..n {
                let label = format!(
                    "{}_{}",
                    label_pool[label_idx[i % label_idx.len()] % label_pool.len()],
                    i
                );
                let ty = type_pool[type_idx[i % type_idx.len()] % type_pool.len()].clone();
                let mut module = Module::new(ModuleId(i as u32), label, ty.clone());
                if ty.is_service() {
                    module.service_authority = Some("example.org".into());
                    module.service_name = Some(format!("op_{i}"));
                    module.service_uri = Some(format!("http://example.org/{i}"));
                }
                if ty.is_script() {
                    module.script = Some(format!("run step {i}"));
                }
                wf.modules.push(module);
            }
            // Only forward edges (u < v) keep the graph acyclic.
            for (u, v) in raw_edges {
                let (u, v) = (u % n, v % n);
                if u < v {
                    wf.links
                        .push(Datalink::new(ModuleId(u as u32), ModuleId(v as u32)));
                }
            }
            wf.links.sort();
            wf.links.dedup();
            wf.annotations.title = title;
            wf.annotations.tags = tags;
            wf
        })
}

fn all_measures() -> Vec<WorkflowSimilarity> {
    vec![
        WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        WorkflowSimilarity::new(SimilarityConfig::best_module_sets()),
        WorkflowSimilarity::new(SimilarityConfig::path_sets_default()),
        WorkflowSimilarity::new(SimilarityConfig::best_path_sets()),
        WorkflowSimilarity::new(SimilarityConfig::graph_edit_default()),
        WorkflowSimilarity::new(SimilarityConfig::bag_of_words()),
        WorkflowSimilarity::new(SimilarityConfig::bag_of_tags()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_workflows_are_valid(wf in workflow_strategy()) {
        prop_assert!(wfsim::model::validate(&wf).is_ok());
    }

    #[test]
    fn measures_are_bounded_and_symmetric(a in workflow_strategy(), b in workflow_strategy()) {
        for measure in all_measures() {
            let ab = measure.similarity_opt(&a, &b);
            let ba = measure.similarity_opt(&b, &a);
            match (ab, ba) {
                (Some(x), Some(y)) => {
                    prop_assert!((0.0..=1.0).contains(&x), "{} out of range: {x}", measure.name());
                    prop_assert!((x - y).abs() < 1e-9, "{} asymmetric: {x} vs {y}", measure.name());
                }
                (None, None) => {}
                _ => prop_assert!(false, "{} applicability must be symmetric", measure.name()),
            }
        }
    }

    #[test]
    fn measures_are_maximal_on_identical_workflows(a in workflow_strategy()) {
        let mut clone = a.clone();
        clone.id = wfsim::model::WorkflowId::new("clone");
        for measure in all_measures() {
            if let Some(s) = measure.similarity_opt(&a, &clone) {
                prop_assert!(
                    s > 1.0 - 1e-9,
                    "{} on identical workflows gave {s}",
                    measure.name()
                );
            }
        }
    }

    #[test]
    fn matching_dominance_relations_hold(
        rows in 1usize..7,
        cols in 1usize..7,
        values in proptest::collection::vec(0.0f64..1.0, 49),
    ) {
        let matrix = SimilarityMatrix::from_fn(rows, cols, |i, j| values[(i * 7 + j) % values.len()]);
        let greedy = greedy_mapping(&matrix).total_weight();
        let optimal = maximum_weight_mapping(&matrix).total_weight();
        let noncrossing = maximum_weight_noncrossing_mapping(&matrix).total_weight();
        prop_assert!(optimal + 1e-9 >= greedy);
        prop_assert!(optimal + 1e-9 >= noncrossing);
        prop_assert!(optimal <= rows.min(cols) as f64 + 1e-9);
    }

    #[test]
    fn projection_never_grows_a_workflow(wf in workflow_strategy()) {
        let scorer = wfsim::repo::ImportanceScorer::new(wfsim::repo::ImportanceConfig::type_based());
        let projected = wfsim::repo::importance_projection(&wf, &scorer);
        prop_assert!(projected.module_count() <= wf.module_count());
        prop_assert!(wfsim::model::validate(&projected).is_ok());
        // Projection is idempotent.
        let twice = wfsim::repo::importance_projection(&projected, &scorer);
        prop_assert_eq!(projected, twice);
    }

    #[test]
    fn extended_measures_are_bounded_and_symmetric(a in workflow_strategy(), b in workflow_strategy()) {
        use wfsim::sim::{LabelVectorSimilarity, McsSimilarity, Measure, WlKernelSimilarity};
        let measures: Vec<Box<dyn Measure>> = vec![
            Box::new(LabelVectorSimilarity::new()),
            Box::new(LabelVectorSimilarity::tokenized()),
            Box::new(McsSimilarity::default()),
            Box::new(McsSimilarity::label_matching()),
            Box::new(WlKernelSimilarity::default()),
            Box::new(WlKernelSimilarity::label_based()),
        ];
        for measure in &measures {
            let ab = measure.measure_opt(&a, &b);
            let ba = measure.measure_opt(&b, &a);
            match (ab, ba) {
                (Some(x), Some(y)) => {
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&x), "{} out of range: {x}", measure.measure_name());
                    prop_assert!((x - y).abs() < 1e-9, "{} asymmetric: {x} vs {y}", measure.measure_name());
                }
                (None, None) => {}
                _ => prop_assert!(false, "{} applicability must be symmetric", measure.measure_name()),
            }
        }
    }

    #[test]
    fn extended_measures_are_maximal_on_identical_workflows(a in workflow_strategy()) {
        use wfsim::sim::{LabelVectorSimilarity, McsSimilarity, Measure, WlKernelSimilarity};
        let mut clone = a.clone();
        clone.id = wfsim::model::WorkflowId::new("clone");
        let measures: Vec<Box<dyn Measure>> = vec![
            Box::new(LabelVectorSimilarity::new()),
            Box::new(McsSimilarity::default()),
            Box::new(WlKernelSimilarity::label_based()),
        ];
        for measure in &measures {
            if let Some(s) = measure.measure_opt(&a, &clone) {
                prop_assert!(
                    s > 1.0 - 1e-9,
                    "{} on identical workflows gave {s}",
                    measure.measure_name()
                );
            }
        }
    }

    #[test]
    fn frequent_itemset_mining_respects_its_support_threshold(
        workflows in proptest::collection::vec(workflow_strategy(), 2..8),
        min_support in 0.0f64..0.8,
    ) {
        use wfsim::repo::{mine_transactions, ItemSource, MiningConfig};
        let transactions: Vec<_> = workflows
            .iter()
            .map(|wf| ItemSource::ModuleLabels.items(wf))
            .collect();
        let config = MiningConfig::with_min_support(min_support);
        let mined = mine_transactions(&transactions, ItemSource::ModuleLabels, &config);
        let threshold = config.support_threshold(transactions.len());
        for itemset in mined.itemsets() {
            prop_assert!(itemset.support >= threshold);
            prop_assert!(itemset.len() <= config.max_size);
            // The reported support is the true containment count.
            let recount = transactions
                .iter()
                .filter(|t| itemset.items.iter().all(|i| t.contains(i)))
                .count();
            prop_assert_eq!(recount, itemset.support);
        }
    }

    #[test]
    fn borda_rank_ensemble_ranks_every_candidate_once(
        query in workflow_strategy(),
        candidates in proptest::collection::vec(workflow_strategy(), 1..6),
    ) {
        use wfsim::sim::RankEnsemble;
        let ensemble = RankEnsemble::from_similarities(vec![
            WorkflowSimilarity::new(SimilarityConfig::bag_of_words()),
            WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        ]);
        let refs: Vec<&Workflow> = candidates.iter().collect();
        let ranked = ensemble.rank(&query, &refs);
        prop_assert_eq!(ranked.len(), candidates.len());
        for pair in ranked.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1, "scores must be sorted descending");
        }
        for (_, points) in &ranked {
            prop_assert!(*points >= 0.0);
            prop_assert!(*points <= candidates.len() as f64 + 1e-9);
        }
    }
}
