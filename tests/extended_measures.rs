//! Integration tests for the extended Table-1 measures and the ensemble
//! extensions: they must behave like proper similarity measures on corpus
//! workflows (not just on hand-built toys) and agree with the latent family
//! structure the corpus generator embeds.

use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::model::Workflow;
use wfsim::repo::{ItemSource, MiningConfig, Repository};
use wfsim::sim::{
    learn_weights, FrequentSetSimilarity, LabelVectorSimilarity, McsSimilarity, Measure,
    RankEnsemble, SimilarityConfig, WlKernelSimilarity, WorkflowSimilarity,
};

fn corpus() -> (Vec<Workflow>, wfsim::corpus::CorpusMeta) {
    generate_taverna_corpus(&TavernaCorpusConfig::small(60, 11))
}

/// All extended measures, boxed behind the common trait.
fn extended_measures(repo: &Repository) -> Vec<Box<dyn Measure>> {
    vec![
        Box::new(LabelVectorSimilarity::new()),
        Box::new(LabelVectorSimilarity::tokenized()),
        Box::new(McsSimilarity::default()),
        Box::new(McsSimilarity::label_matching()),
        Box::new(WlKernelSimilarity::default()),
        Box::new(WlKernelSimilarity::label_based()),
        Box::new(FrequentSetSimilarity::frequent_module_sets(repo)),
        Box::new(FrequentSetSimilarity::frequent_tag_sets(repo)),
    ]
}

#[test]
fn extended_measures_are_bounded_symmetric_and_reflexive_on_corpus_workflows() {
    let (workflows, _) = corpus();
    let repo = Repository::from_workflows(workflows.clone());
    let sample: Vec<&Workflow> = workflows.iter().step_by(7).collect();
    for measure in extended_measures(&repo) {
        for a in &sample {
            // Reflexivity: a workflow is maximally similar to itself
            // whenever the measure applies to it at all.
            if let Some(self_sim) = measure.measure_opt(a, a) {
                assert!(
                    self_sim > 0.999,
                    "{}: self-similarity of {} is {self_sim}",
                    measure.measure_name(),
                    a.id.as_str()
                );
            }
            for b in &sample {
                let ab = measure.measure(a, b);
                let ba = measure.measure(b, a);
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&ab),
                    "{}: out of range score {ab}",
                    measure.measure_name()
                );
                assert!(
                    (ab - ba).abs() < 1e-9,
                    "{}: asymmetric scores {ab} vs {ba}",
                    measure.measure_name()
                );
            }
        }
    }
}

#[test]
fn extended_measures_rank_family_members_above_strangers() {
    let (workflows, meta) = corpus();
    let repo = Repository::from_workflows(workflows.clone());
    // Pick a workflow with at least one other family member.
    let (anchor, sibling) = workflows
        .iter()
        .find_map(|wf| {
            let family = meta.get(&wf.id)?.family;
            let sibling = workflows.iter().find(|other| {
                other.id != wf.id && meta.get(&other.id).map(|m| m.family) == Some(family)
            })?;
            Some((wf, sibling))
        })
        .expect("the corpus contains multi-member families");
    let anchor_family = meta.get(&anchor.id).unwrap().family;
    let strangers: Vec<&Workflow> = workflows
        .iter()
        .filter(|wf| {
            meta.get(&wf.id)
                .map(|m| {
                    m.family != anchor_family && m.topic != meta.get(&anchor.id).unwrap().topic
                })
                .unwrap_or(false)
        })
        .take(10)
        .collect();
    assert!(!strangers.is_empty());
    // Structure-aware extended measures must, on average, score the family
    // sibling at least as high as cross-topic strangers.
    for measure in [
        Box::new(McsSimilarity::default()) as Box<dyn Measure>,
        Box::new(WlKernelSimilarity::label_based()),
        Box::new(LabelVectorSimilarity::tokenized()),
        Box::new(FrequentSetSimilarity::frequent_module_sets(&repo)),
    ] {
        let sibling_score = measure.measure(anchor, sibling);
        let stranger_mean: f64 = strangers
            .iter()
            .map(|s| measure.measure(anchor, s))
            .sum::<f64>()
            / strangers.len() as f64;
        assert!(
            sibling_score >= stranger_mean,
            "{}: sibling {sibling_score} < stranger mean {stranger_mean}",
            measure.measure_name()
        );
    }
}

#[test]
fn frequent_itemset_mining_scales_with_the_support_threshold() {
    let (workflows, _) = corpus();
    let repo = Repository::from_workflows(workflows);
    let loose = wfsim::repo::mine_repository(
        &repo,
        ItemSource::ModuleLabels,
        &MiningConfig::with_min_support(0.02),
    );
    let strict = wfsim::repo::mine_repository(
        &repo,
        ItemSource::ModuleLabels,
        &MiningConfig::with_min_support(0.2),
    );
    assert!(loose.len() >= strict.len());
    assert!(!loose.is_empty(), "corpus workflows share frequent modules");
    for itemset in strict.itemsets() {
        assert!(itemset.support >= strict.support_threshold());
    }
}

#[test]
fn rank_ensemble_and_learned_weights_work_on_corpus_workflows() {
    let (workflows, meta) = corpus();
    let query = &workflows[0];
    let query_family = meta.get(&query.id).unwrap().family;
    let candidates: Vec<&Workflow> = workflows.iter().skip(1).take(12).collect();

    let members = vec![
        WorkflowSimilarity::new(SimilarityConfig::bag_of_words()),
        WorkflowSimilarity::new(SimilarityConfig::best_module_sets()),
    ];
    let borda = RankEnsemble::from_similarities(members.clone());
    let ranked = borda.rank(query, &candidates);
    assert_eq!(ranked.len(), candidates.len());
    // Scores are sorted descending.
    for pair in ranked.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }
    // If a family member is among the candidates it should not be ranked
    // dead last by the combined ranking.
    if let Some(position) = ranked.iter().position(|(id, _)| {
        meta.get(&wfsim::model::WorkflowId::new(id.clone()))
            .map(|m| m.family == query_family)
            .unwrap_or(false)
    }) {
        assert!(position < ranked.len() - 1, "family member ranked last");
    }

    // Weight learning with a trivial objective terminates and returns a
    // simplex point.
    let learned = learn_weights(&members, 5, |ensemble| {
        ensemble.similarity(query, candidates[0])
    });
    assert_eq!(learned.weights.len(), 2);
    assert!((learned.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}
