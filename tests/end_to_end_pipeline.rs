//! End-to-end integration test: synthetic corpus → repository → similarity
//! search → gold-standard evaluation, i.e. a miniature version of the
//! paper's whole evaluation pipeline spanning every crate of the workspace.

use wfsim::corpus::{
    generate_taverna_corpus, select_candidates, select_queries, ExpertPanel, ExpertPanelConfig,
    TavernaCorpusConfig,
};
use wfsim::gold::precision::precision_curve;
use wfsim::gold::{
    bioconsert_consensus, ranking_correctness_completeness, BioConsertConfig, Ranking,
    RelevanceThreshold,
};
use wfsim::repo::{Repository, SearchEngine};
use wfsim::sim::{Ensemble, SimilarityConfig, WorkflowSimilarity};

fn corpus() -> (Repository, wfsim::corpus::CorpusMeta) {
    let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(120, 17));
    (Repository::from_workflows(corpus), meta)
}

#[test]
fn ranking_pipeline_produces_scores_that_beat_chance() {
    let (repository, meta) = corpus();
    let queries = select_queries(&meta, 5, 3, 2);
    assert_eq!(queries.len(), 5);
    let panel = ExpertPanel::new(ExpertPanelConfig::default());
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());

    let mut correctness_sum = 0.0;
    for (qi, query_id) in queries.iter().enumerate() {
        let query = repository.get(query_id).expect("query exists");
        let candidates = select_candidates(&meta, query_id, 10, 300 + qi as u64);
        assert_eq!(candidates.len(), 10);

        // Simulated expert study and consensus.
        let pairs: Vec<_> = candidates
            .iter()
            .map(|c| (query_id.clone(), c.clone()))
            .collect();
        let ratings = panel.rate_pairs(&meta, &pairs);
        assert!(ratings.len() >= 10 * 10, "15 experts minus unsure votes");
        let expert_rankings: Vec<Ranking> = ratings
            .expert_rankings(query_id.as_str())
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert!(expert_rankings.len() >= 10);
        let consensus = bioconsert_consensus(&expert_rankings, &BioConsertConfig::default());
        assert!(!consensus.is_empty());

        // Algorithmic ranking of the same candidates.
        let scored: Vec<(String, f64)> = candidates
            .iter()
            .map(|c| {
                let wf = repository.get(c).expect("candidate exists");
                (c.as_str().to_string(), measure.similarity(query, wf))
            })
            .collect();
        let algorithmic = Ranking::from_scores(scored, 1e-9);
        let quality = ranking_correctness_completeness(&algorithmic, &consensus);
        correctness_sum += quality.correctness;
        assert!(quality.completeness > 0.0);
    }
    let mean_correctness = correctness_sum / queries.len() as f64;
    assert!(
        mean_correctness > 0.2,
        "structural similarity must correlate with the simulated experts (got {mean_correctness})"
    );
}

#[test]
fn retrieval_pipeline_finds_family_members_first() {
    let (repository, meta) = corpus();
    let query_id = select_queries(&meta, 1, 4, 9)[0].clone();
    let query = repository.get(&query_id).expect("query exists").clone();
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let engine = SearchEngine::new(
        &repository,
        |a: &wfsim::model::Workflow, b: &wfsim::model::Workflow| measure.similarity(a, b),
    )
    .with_threads(4);

    let hits = engine.top_k_parallel(&query, 10);
    assert_eq!(hits.len(), 10);
    assert!(hits.iter().all(|h| h.id != query.id));
    // Scores are sorted descending.
    for pair in hits.windows(2) {
        assert!(pair[0].score >= pair[1].score - 1e-12);
    }
    // The query's family members should be concentrated at the top: the
    // number of family members among the top 3 must be at least as large as
    // among the bottom 3.
    let family_of = |id: &wfsim::model::WorkflowId| meta.get(id).map(|m| m.family);
    let query_family = family_of(&query.id);
    let in_family = |slice: &[wfsim::repo::SearchHit]| {
        slice
            .iter()
            .filter(|h| family_of(&h.id) == query_family)
            .count()
    };
    assert!(in_family(&hits[..3]) >= in_family(&hits[7..]));
    assert!(
        in_family(&hits[..3]) >= 1,
        "at least one sibling retrieved at the top"
    );
}

#[test]
fn retrieval_precision_respects_threshold_ordering() {
    let (repository, meta) = corpus();
    let query_id = select_queries(&meta, 1, 4, 31)[0].clone();
    let query = repository.get(&query_id).expect("query exists").clone();
    let ensemble = Ensemble::bw_plus_module_sets();
    let engine = SearchEngine::new(
        &repository,
        |a: &wfsim::model::Workflow, b: &wfsim::model::Workflow| ensemble.similarity(a, b),
    );
    let hits = engine.top_k(&query, 10);
    let results: Vec<String> = hits.iter().map(|h| h.id.as_str().to_string()).collect();

    // Rate the retrieved pairs with the panel, then compute precision curves.
    let panel = ExpertPanel::new(ExpertPanelConfig::default());
    let pairs: Vec<_> = hits
        .iter()
        .map(|h| (query_id.clone(), h.id.clone()))
        .collect();
    let ratings = panel.rate_pairs(&meta, &pairs);

    let curve_for = |threshold: RelevanceThreshold| {
        precision_curve(
            &results,
            |candidate| threshold.is_relevant(ratings.median(query_id.as_str(), candidate)),
            10,
        )
    };
    let related = curve_for(RelevanceThreshold::Related);
    let similar = curve_for(RelevanceThreshold::Similar);
    let very = curve_for(RelevanceThreshold::VerySimilar);
    for k in 0..10 {
        assert!(related[k] + 1e-12 >= similar[k]);
        assert!(similar[k] + 1e-12 >= very[k]);
    }
    assert!(
        related[0] > 0.0,
        "the ensemble's first hit should at least be related to the query"
    );
}

#[test]
fn importance_projection_speeds_up_without_destroying_ordering() {
    let (repository, meta) = corpus();
    let query_id = select_queries(&meta, 1, 4, 57)[0].clone();
    let query = repository.get(&query_id).expect("query exists");
    let np = WorkflowSimilarity::new(
        SimilarityConfig::module_sets_default()
            .with_scheme(wfsim::sim::ModuleComparisonScheme::pll()),
    );
    let ip = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());

    // The projected measure compares fewer module pairs …
    let other = repository
        .iter()
        .find(|w| w.id != query.id)
        .expect("more than one workflow");
    assert!(ip.report(query, other).compared_pairs <= np.report(query, other).compared_pairs);

    // … and still puts family members above strangers.
    let sibling = repository
        .iter()
        .find(|w| {
            w.id != query.id
                && meta.get(&w.id).map(|m| m.family) == meta.get(&query.id).map(|m| m.family)
        })
        .expect("sibling exists");
    let stranger = repository
        .iter()
        .find(|w| meta.get(&w.id).map(|m| m.topic) != meta.get(&query.id).map(|m| m.topic))
        .expect("stranger exists");
    assert!(ip.similarity(query, sibling) > ip.similarity(query, stranger));
}
