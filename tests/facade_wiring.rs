//! Exercises the `wfsim` facade re-exports end-to-end: a workflow built
//! through `wfsim::model` must flow into `wfsim::sim` and come back as a
//! similarity score, proving the re-export wiring (not just the subsystem
//! crates) is correct.

use wfsim::model::{ModuleType, WorkflowBuilder};
use wfsim::sim::{SimilarityConfig, WorkflowSimilarity};

fn protein_search(id: &str, with_report: bool) -> wfsim::model::Workflow {
    let mut builder = WorkflowBuilder::new(id)
        .title("BLAST protein search")
        .module("fetch_sequence", ModuleType::WsdlService, |m| {
            m.service("ebi.ac.uk", "fetch_fasta", "http://ebi.ac.uk/ws")
        })
        .module("run_blast", ModuleType::WsdlService, |m| {
            m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
        })
        .link("fetch_sequence", "run_blast");
    if with_report {
        builder = builder
            .module("render_report", ModuleType::BeanshellScript, |m| {
                m.script("print(hits)")
            })
            .link("run_blast", "render_report");
    }
    builder.build().expect("facade-built workflow is valid")
}

#[test]
fn model_to_sim_end_to_end_produces_a_score_in_unit_interval() {
    let a = protein_search("a", false);
    let b = protein_search("b", true);

    let measure = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
    let sim = measure.similarity(&a, &b);
    assert!(
        sim > 0.0 && sim <= 1.0,
        "related workflows must score in (0, 1], got {sim}"
    );

    // Identity is maximal and the measure is symmetric.
    assert!((measure.similarity(&a, &a) - 1.0).abs() < 1e-9);
    assert!((measure.similarity(&a, &b) - measure.similarity(&b, &a)).abs() < 1e-9);
}

#[test]
fn every_facade_module_is_reachable() {
    // One cheap touchpoint per re-exported subsystem crate, so a broken
    // `pub use` line fails this test rather than only downstream users.
    let wf = protein_search("touch", true);

    // wfsim::text
    let sim = wfsim::text::levenshtein_similarity("fetch_sequence", "fetch_sequences");
    assert!(sim > 0.8 && sim < 1.0);

    // wfsim::sim module comparison + wfsim::matching greedy mapping.
    let scheme = wfsim::sim::ModuleComparisonScheme::pll();
    let (matrix, compared) = wfsim::sim::module_similarity_matrix(
        &wf,
        &wf,
        &scheme,
        wfsim::repo::PreselectionStrategy::AllPairs,
    );
    assert_eq!(compared, wf.modules.len() * wf.modules.len());
    let mapping = wfsim::matching::greedy_mapping(&matrix);
    assert_eq!(mapping.len(), wf.modules.len());

    // wfsim::ged
    let graph = wfsim::ged::LabeledGraph::from_workflow_by_label(&wf);
    let costs = wfsim::ged::GedCosts::uniform();
    let budget = wfsim::ged::GedBudget::small();
    let d = wfsim::ged::astar_ged(&graph, &graph, &costs, &budget);
    assert_eq!(d, Some(0.0), "self graph edit distance must be zero");

    // wfsim::repo
    let mut repo = wfsim::repo::Repository::new();
    repo.insert(protein_search("other", false));
    assert_eq!(repo.len(), 1);

    // wfsim::cluster
    let measure = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
    let wfs = vec![protein_search("x", false), protein_search("y", true)];
    let matrix = wfsim::cluster::PairwiseSimilarities::compute(&wfs, &measure);
    assert_eq!(matrix.len(), 2);

    // wfsim::gold
    let rating = wfsim::gold::LikertRating::Similar;
    assert_eq!(rating.value(), Some(2));

    // wfsim::corpus
    let (corpus, _) =
        wfsim::corpus::generate_taverna_corpus(&wfsim::corpus::TavernaCorpusConfig::small(6, 1));
    assert_eq!(corpus.len(), 6);
}
