//! Facade wiring of the shared corpus layer: `wfsim::Corpus` must be
//! reachable and interoperate with the re-exported clustering and search
//! machinery end to end (build → mutate → snapshot → score).

use wfsim::cluster::PairwiseSimilarities;
use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::sim::SimilarityConfig;
use wfsim::{Corpus, CorpusService, ShardedCorpus};

#[test]
fn corpus_layer_is_wired_through_the_facade() {
    let (workflows, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(30, 13));
    let mut corpus = Corpus::build(SimilarityConfig::best_module_sets(), workflows);
    assert_eq!(corpus.len(), 30);

    // Search through the corpus-resident index.
    let query = corpus.ids()[0].clone();
    let hits = corpus.top_k(&query, 5).expect("query is resident");
    assert_eq!(hits.len(), 5);

    // Mutate: drop the query workflow, search for something else.
    assert!(corpus.remove(&query).is_some());
    assert_eq!(corpus.len(), 29);
    assert!(corpus.top_k(&query, 5).is_none());

    // Snapshot round-trip preserves matrix results bit-for-bit.
    let restored = Corpus::from_snapshot_str(
        &corpus.to_snapshot_string(),
        SimilarityConfig::best_module_sets(),
    )
    .expect("snapshot loads through the facade");
    let a = PairwiseSimilarities::compute_profiled(&corpus);
    let b = PairwiseSimilarities::compute_profiled(&restored);
    assert_eq!(a, b);
}

#[test]
fn sharded_service_is_wired_through_the_facade() {
    let (workflows, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(30, 13));
    let single = Corpus::build(SimilarityConfig::best_module_sets(), workflows.clone());
    let sharded = ShardedCorpus::build(SimilarityConfig::best_module_sets(), 4, workflows);
    assert_eq!(sharded.len(), 30);

    // Scatter-gather equals the single-corpus engine through the facade.
    let query = single.ids()[7].clone();
    let expected = single.top_k(&query, 5).expect("resident");
    assert_eq!(sharded.search(&query, 5).expect("resident"), expected);

    // The concurrent service answers the same and takes churn.
    let service = CorpusService::new(sharded).with_threads(2);
    assert_eq!(service.search(&query, 5).expect("resident"), expected);
    let victim = single.ids()[0].clone();
    assert!(service.remove(&victim).is_some());
    assert_eq!(service.len(), 29);
    let batch = service.search_batch(&[query.clone(), victim.clone()], 5);
    assert!(batch[0].is_some());
    assert!(batch[1].is_none(), "removed ids stop resolving");
}
