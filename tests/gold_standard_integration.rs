//! Integration tests for the gold-standard machinery driven by the simulated
//! expert panel: BioConsert consensus quality, the behaviour of ranking
//! correctness/completeness on realistic expert data, and precision@k on
//! stratified candidate sets.

use wfsim::corpus::{
    generate_taverna_corpus, latent_similarity, select_candidates, select_queries, ExpertPanel,
    ExpertPanelConfig, TavernaCorpusConfig,
};
use wfsim::gold::kendall::total_distance;
use wfsim::gold::{
    bioconsert_consensus, ranking_correctness_completeness, BioConsertConfig, KendallConfig,
    LikertRating, Ranking, RelevanceThreshold,
};
use wfsim::model::WorkflowId;

fn setup() -> (wfsim::corpus::CorpusMeta, Vec<WorkflowId>, Vec<WorkflowId>) {
    let (_, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(100, 33));
    let queries = select_queries(&meta, 3, 3, 4);
    let candidates = select_candidates(&meta, &queries[0], 10, 5);
    (meta, queries, candidates)
}

#[test]
fn consensus_is_at_least_as_central_as_every_expert_ranking() {
    let (meta, queries, candidates) = setup();
    let panel = ExpertPanel::new(ExpertPanelConfig::default());
    let pairs: Vec<_> = candidates
        .iter()
        .map(|c| (queries[0].clone(), c.clone()))
        .collect();
    let ratings = panel.rate_pairs(&meta, &pairs);
    let expert_rankings: Vec<Ranking> = ratings
        .expert_rankings(queries[0].as_str())
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    assert_eq!(expert_rankings.len(), 15);

    let config = BioConsertConfig::default();
    let consensus = bioconsert_consensus(&expert_rankings, &config);
    let consensus_cost = total_distance(&consensus, &expert_rankings, &KendallConfig::default());
    for expert_ranking in &expert_rankings {
        // Each expert ranking, extended with the items it does not rank (as
        // BioConsert's unification does), must not beat the consensus.
        let mut unified = expert_ranking.clone();
        let missing: Vec<String> = consensus
            .items()
            .into_iter()
            .filter(|i| !expert_ranking.contains(i))
            .map(str::to_string)
            .collect();
        unified.push_bucket(missing);
        let cost = total_distance(&unified, &expert_rankings, &KendallConfig::default());
        assert!(
            consensus_cost <= cost + 1e-9,
            "consensus {consensus_cost} must be central (expert cost {cost})"
        );
    }
}

#[test]
fn consensus_ranking_recovers_the_latent_order() {
    let (meta, queries, candidates) = setup();
    let panel = ExpertPanel::new(ExpertPanelConfig::default());
    let query = &queries[0];
    let pairs: Vec<_> = candidates
        .iter()
        .map(|c| (query.clone(), c.clone()))
        .collect();
    let ratings = panel.rate_pairs(&meta, &pairs);
    let expert_rankings: Vec<Ranking> = ratings
        .expert_rankings(query.as_str())
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    let consensus = bioconsert_consensus(&expert_rankings, &BioConsertConfig::default());

    // The ideal ranking orders candidates by latent similarity to the query.
    let ideal = Ranking::from_scores(
        candidates
            .iter()
            .map(|c| {
                (
                    c.as_str().to_string(),
                    meta.latent(query, c).expect("known candidates"),
                )
            })
            .collect(),
        1e-9,
    );
    let quality = ranking_correctness_completeness(&consensus, &ideal);
    assert!(
        quality.correctness > 0.6,
        "the consensus of 15 noisy experts should track the latent order (got {})",
        quality.correctness
    );
}

#[test]
fn per_expert_agreement_degrades_gracefully_with_noise() {
    let (meta, queries, candidates) = setup();
    let query = &queries[0];
    let pairs: Vec<_> = candidates
        .iter()
        .map(|c| (query.clone(), c.clone()))
        .collect();

    let evaluate_panel = |noise: f64| -> f64 {
        let panel = ExpertPanel::new(ExpertPanelConfig {
            noise,
            seed: 9,
            ..ExpertPanelConfig::default()
        });
        let ratings = panel.rate_pairs(&meta, &pairs);
        let rankings: Vec<Ranking> = ratings
            .expert_rankings(query.as_str())
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let consensus = bioconsert_consensus(&rankings, &BioConsertConfig::default());
        let mut sum = 0.0;
        for r in &rankings {
            sum += ranking_correctness_completeness(r, &consensus).correctness;
        }
        sum / rankings.len() as f64
    };

    let calm = evaluate_panel(0.02);
    let noisy = evaluate_panel(0.35);
    assert!(calm > noisy, "calm panel {calm} vs noisy panel {noisy}");
    assert!(calm > 0.8);
}

#[test]
fn relevance_thresholds_and_latent_strata_are_consistent() {
    let (meta, queries, candidates) = setup();
    let panel = ExpertPanel::new(ExpertPanelConfig::default());
    let query = &queries[0];
    let pairs: Vec<_> = candidates
        .iter()
        .map(|c| (query.clone(), c.clone()))
        .collect();
    let ratings = panel.rate_pairs(&meta, &pairs);

    for candidate in &candidates {
        let latent = meta.latent(query, candidate).unwrap();
        let median = ratings.median(query.as_str(), candidate.as_str());
        if latent > 0.85 {
            assert!(
                RelevanceThreshold::Similar.is_relevant(median),
                "a near-duplicate ({latent}) must be judged at least similar, got {median:?}"
            );
        }
        if latent < 0.15 {
            assert!(
                !RelevanceThreshold::Related.is_relevant(median),
                "an unrelated workflow ({latent}) must not be judged related, got {median:?}"
            );
        }
    }
}

#[test]
fn likert_medians_match_manual_aggregation() {
    let (meta, queries, candidates) = setup();
    let panel = ExpertPanel::new(ExpertPanelConfig::default());
    let query = &queries[0];
    let candidate = &candidates[0];
    let ratings = panel.rate_pairs(&meta, &[(query.clone(), candidate.clone())]);
    // Recompute the median by hand from the individual expert votes.
    let mut votes: Vec<u8> = ratings
        .ratings()
        .iter()
        .filter(|r| r.query == query.as_str() && r.candidate == candidate.as_str())
        .filter_map(|r| r.rating.value())
        .collect();
    votes.sort_unstable();
    let expected = LikertRating::from_value(votes[(votes.len() - 1) / 2]);
    assert_eq!(
        ratings.median(query.as_str(), candidate.as_str()),
        Some(expected)
    );
}

#[test]
fn latent_similarity_reflects_family_and_topic_structure_across_the_corpus() {
    let (meta, _, _) = setup();
    let entries: Vec<_> = meta.iter().cloned().collect();
    let mut family_pairs = 0usize;
    let mut cross_topic_pairs = 0usize;
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            let latent = latent_similarity(a, b);
            assert!((0.0..=1.0).contains(&latent));
            if a.family == b.family {
                family_pairs += 1;
                assert!(latent >= 0.55, "family pairs are at least 'similar'");
            }
            if a.topic != b.topic {
                cross_topic_pairs += 1;
                assert!(latent <= 0.2, "cross-topic pairs are dissimilar");
            }
        }
    }
    assert!(family_pairs > 0);
    assert!(cross_topic_pairs > 0);
}
