//! Integration test: the clustering use case end to end.
//!
//! Corpus generation → similarity matrix under a framework measure →
//! hierarchical / threshold / k-medoids clustering → external quality
//! against the latent family structure → duplicate detection.  This is the
//! "grouping of workflows into functional clusters" task the paper's
//! introduction motivates, spanning wf-corpus, wf-sim and wf-cluster.

use wfsim::cluster::{
    adjusted_rand_index, duplicate_pairs, hierarchical_clustering, kmedoids,
    normalized_mutual_information, purity, threshold_clustering, Linkage, PairwiseSimilarities,
};
use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::model::Workflow;
use wfsim::sim::{SimilarityConfig, WorkflowSimilarity};

fn corpus() -> (Vec<Workflow>, Vec<usize>, usize) {
    let (workflows, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(70, 23));
    let truth: Vec<usize> = workflows
        .iter()
        .map(|wf| meta.get(&wf.id).expect("metadata exists").family)
        .collect();
    let families = {
        let mut f = truth.clone();
        f.sort_unstable();
        f.dedup();
        f.len()
    };
    (workflows, truth, families)
}

#[test]
fn similarity_based_clustering_recovers_latent_families_better_than_chance() {
    let (workflows, truth, families) = corpus();
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let matrix = PairwiseSimilarities::compute_parallel(&workflows, &measure, 4);

    let clusters = hierarchical_clustering(&matrix, Linkage::Average).cut_k(families);
    assert_eq!(clusters.len(), workflows.len());
    assert_eq!(clusters.cluster_count(), families);

    let ari = adjusted_rand_index(&clusters, &truth);
    let nmi = normalized_mutual_information(&clusters, &truth);
    let pur = purity(&clusters, &truth);
    assert!(ari > 0.2, "ARI should clearly beat chance, got {ari}");
    assert!(nmi > 0.5, "NMI should clearly beat chance, got {nmi}");
    assert!(pur > 0.4, "purity should clearly beat chance, got {pur}");
}

#[test]
fn kmedoids_and_hierarchical_agree_on_the_broad_structure() {
    let (workflows, truth, families) = corpus();
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let matrix = PairwiseSimilarities::compute(&workflows, &measure);

    let hier = hierarchical_clustering(&matrix, Linkage::Average).cut_k(families);
    let pam = kmedoids(&matrix, families, 30);
    let ari_hier = adjusted_rand_index(&hier, &truth);
    let ari_pam = adjusted_rand_index(&pam.clustering, &truth);
    assert!(ari_pam > 0.0);
    assert!(ari_hier > 0.0);
    // The two algorithms use the same matrix; their agreement with each
    // other should be at least as strong as chance.
    let cross = adjusted_rand_index(&hier, pam.clustering.assignments());
    assert!(
        cross > 0.0,
        "hierarchical and k-medoids should overlap, got {cross}"
    );
}

#[test]
fn duplicate_detection_finds_mutation_twins_and_respects_the_threshold() {
    let (workflows, truth, _) = corpus();
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let matrix = PairwiseSimilarities::compute(&workflows, &measure);

    let strict = duplicate_pairs(&matrix, 0.95);
    let loose = duplicate_pairs(&matrix, 0.75);
    assert!(loose.len() >= strict.len());
    assert!(
        !loose.is_empty(),
        "mutation-derived corpora contain near duplicates"
    );
    // Near-duplicates overwhelmingly come from the same latent family.
    let same_family = loose
        .iter()
        .filter(|p| truth[p.first] == truth[p.second])
        .count();
    assert!(
        same_family * 2 >= loose.len(),
        "at least half of the near-duplicates share a family ({same_family}/{})",
        loose.len()
    );

    // Threshold clustering at a high threshold yields many small clusters;
    // at a low threshold it collapses the corpus into few clusters.
    let fine = threshold_clustering(&matrix, 0.9);
    let coarse = threshold_clustering(&matrix, 0.05);
    assert!(fine.cluster_count() > coarse.cluster_count());
}

#[test]
fn clustering_works_with_annotation_measures_too() {
    let (workflows, truth, families) = corpus();
    let measure = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
    let matrix = PairwiseSimilarities::compute_parallel(&workflows, &measure, 2);
    let clusters = hierarchical_clustering(&matrix, Linkage::Average).cut_k(families);
    let ari = adjusted_rand_index(&clusters, &truth);
    assert!(
        ari > 0.0,
        "annotation-based clustering should still beat chance, got {ari}"
    );
}
